file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_experiments.dir/test_e2e_experiments.cpp.o"
  "CMakeFiles/test_e2e_experiments.dir/test_e2e_experiments.cpp.o.d"
  "test_e2e_experiments"
  "test_e2e_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
