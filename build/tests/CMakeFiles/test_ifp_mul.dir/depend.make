# Empty dependencies file for test_ifp_mul.
# This may be replaced when dependencies are built.
