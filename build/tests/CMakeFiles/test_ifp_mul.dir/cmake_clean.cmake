file(REMOVE_RECURSE
  "CMakeFiles/test_ifp_mul.dir/test_ifp_mul.cpp.o"
  "CMakeFiles/test_ifp_mul.dir/test_ifp_mul.cpp.o.d"
  "test_ifp_mul"
  "test_ifp_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ifp_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
