# Empty dependencies file for test_fuzz_units.
# This may be replaced when dependencies are built.
