file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_units.dir/test_fuzz_units.cpp.o"
  "CMakeFiles/test_fuzz_units.dir/test_fuzz_units.cpp.o.d"
  "test_fuzz_units"
  "test_fuzz_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
