file(REMOVE_RECURSE
  "CMakeFiles/test_trunc_mul.dir/test_trunc_mul.cpp.o"
  "CMakeFiles/test_trunc_mul.dir/test_trunc_mul.cpp.o.d"
  "test_trunc_mul"
  "test_trunc_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trunc_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
