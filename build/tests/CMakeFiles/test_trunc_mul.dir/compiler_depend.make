# Empty compiler generated dependencies file for test_trunc_mul.
# This may be replaced when dependencies are built.
