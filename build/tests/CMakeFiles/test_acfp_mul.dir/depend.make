# Empty dependencies file for test_acfp_mul.
# This may be replaced when dependencies are built.
