file(REMOVE_RECURSE
  "CMakeFiles/test_acfp_mul.dir/test_acfp_mul.cpp.o"
  "CMakeFiles/test_acfp_mul.dir/test_acfp_mul.cpp.o.d"
  "test_acfp_mul"
  "test_acfp_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acfp_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
