file(REMOVE_RECURSE
  "CMakeFiles/test_sfu.dir/test_sfu.cpp.o"
  "CMakeFiles/test_sfu.dir/test_sfu.cpp.o.d"
  "test_sfu"
  "test_sfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
