# Empty compiler generated dependencies file for test_sfu.
# This may be replaced when dependencies are built.
