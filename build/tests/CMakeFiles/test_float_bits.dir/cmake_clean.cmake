file(REMOVE_RECURSE
  "CMakeFiles/test_float_bits.dir/test_float_bits.cpp.o"
  "CMakeFiles/test_float_bits.dir/test_float_bits.cpp.o.d"
  "test_float_bits"
  "test_float_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
