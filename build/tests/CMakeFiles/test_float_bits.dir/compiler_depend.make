# Empty compiler generated dependencies file for test_float_bits.
# This may be replaced when dependencies are built.
