file(REMOVE_RECURSE
  "CMakeFiles/test_mitchell.dir/test_mitchell.cpp.o"
  "CMakeFiles/test_mitchell.dir/test_mitchell.cpp.o.d"
  "test_mitchell"
  "test_mitchell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitchell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
