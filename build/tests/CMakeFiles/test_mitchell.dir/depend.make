# Empty dependencies file for test_mitchell.
# This may be replaced when dependencies are built.
