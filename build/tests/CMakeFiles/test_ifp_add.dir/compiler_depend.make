# Empty compiler generated dependencies file for test_ifp_add.
# This may be replaced when dependencies are built.
