file(REMOVE_RECURSE
  "CMakeFiles/test_ifp_add.dir/test_ifp_add.cpp.o"
  "CMakeFiles/test_ifp_add.dir/test_ifp_add.cpp.o.d"
  "test_ifp_add"
  "test_ifp_add.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ifp_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
