file(REMOVE_RECURSE
  "CMakeFiles/test_config_dispatch.dir/test_config_dispatch.cpp.o"
  "CMakeFiles/test_config_dispatch.dir/test_config_dispatch.cpp.o.d"
  "test_config_dispatch"
  "test_config_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
