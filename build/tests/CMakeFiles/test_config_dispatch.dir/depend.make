# Empty dependencies file for test_config_dispatch.
# This may be replaced when dependencies are built.
