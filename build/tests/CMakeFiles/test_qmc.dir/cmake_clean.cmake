file(REMOVE_RECURSE
  "CMakeFiles/test_qmc.dir/test_qmc.cpp.o"
  "CMakeFiles/test_qmc.dir/test_qmc.cpp.o.d"
  "test_qmc"
  "test_qmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
