# Empty compiler generated dependencies file for test_qmc.
# This may be replaced when dependencies are built.
