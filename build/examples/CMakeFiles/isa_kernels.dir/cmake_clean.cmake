file(REMOVE_RECURSE
  "CMakeFiles/isa_kernels.dir/isa_kernels.cpp.o"
  "CMakeFiles/isa_kernels.dir/isa_kernels.cpp.o.d"
  "isa_kernels"
  "isa_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
