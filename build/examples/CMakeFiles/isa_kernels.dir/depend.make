# Empty dependencies file for isa_kernels.
# This may be replaced when dependencies are built.
