# Empty dependencies file for speech_recognition.
# This may be replaced when dependencies are built.
