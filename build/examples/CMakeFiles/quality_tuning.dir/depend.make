# Empty dependencies file for quality_tuning.
# This may be replaced when dependencies are built.
