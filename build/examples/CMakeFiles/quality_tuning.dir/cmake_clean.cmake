file(REMOVE_RECURSE
  "CMakeFiles/quality_tuning.dir/quality_tuning.cpp.o"
  "CMakeFiles/quality_tuning.dir/quality_tuning.cpp.o.d"
  "quality_tuning"
  "quality_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
