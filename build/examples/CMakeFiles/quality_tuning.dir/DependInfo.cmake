
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quality_tuning.cpp" "examples/CMakeFiles/quality_tuning.dir/quality_tuning.cpp.o" "gcc" "examples/CMakeFiles/quality_tuning.dir/quality_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ihw_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ihw_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/ihw_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ihw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/error/CMakeFiles/ihw_error.dir/DependInfo.cmake"
  "/root/repo/build/src/ihw/CMakeFiles/ihw_units.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/ihw_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/qmc/CMakeFiles/ihw_qmc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpcore/CMakeFiles/ihw_fpcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ihw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
