file(REMOVE_RECURSE
  "CMakeFiles/thermal_sim.dir/thermal_sim.cpp.o"
  "CMakeFiles/thermal_sim.dir/thermal_sim.cpp.o.d"
  "thermal_sim"
  "thermal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
