# Empty dependencies file for table5_system_savings.
# This may be replaced when dependencies are built.
