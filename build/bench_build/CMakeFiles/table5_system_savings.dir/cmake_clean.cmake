file(REMOVE_RECURSE
  "../bench/table5_system_savings"
  "../bench/table5_system_savings.pdb"
  "CMakeFiles/table5_system_savings.dir/table5_system_savings.cpp.o"
  "CMakeFiles/table5_system_savings.dir/table5_system_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_system_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
