# Empty dependencies file for fig14_power_quality.
# This may be replaced when dependencies are built.
