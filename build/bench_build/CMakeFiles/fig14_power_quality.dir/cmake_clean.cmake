file(REMOVE_RECURSE
  "../bench/fig14_power_quality"
  "../bench/fig14_power_quality.pdb"
  "CMakeFiles/fig14_power_quality.dir/fig14_power_quality.cpp.o"
  "CMakeFiles/fig14_power_quality.dir/fig14_power_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_power_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
