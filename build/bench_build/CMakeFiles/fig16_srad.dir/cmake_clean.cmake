file(REMOVE_RECURSE
  "../bench/fig16_srad"
  "../bench/fig16_srad.pdb"
  "CMakeFiles/fig16_srad.dir/fig16_srad.cpp.o"
  "CMakeFiles/fig16_srad.dir/fig16_srad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_srad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
