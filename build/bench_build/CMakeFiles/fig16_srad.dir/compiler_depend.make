# Empty compiler generated dependencies file for fig16_srad.
# This may be replaced when dependencies are built.
