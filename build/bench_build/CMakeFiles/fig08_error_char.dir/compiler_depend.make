# Empty compiler generated dependencies file for fig08_error_char.
# This may be replaced when dependencies are built.
