file(REMOVE_RECURSE
  "../bench/fig08_error_char"
  "../bench/fig08_error_char.pdb"
  "CMakeFiles/fig08_error_char.dir/fig08_error_char.cpp.o"
  "CMakeFiles/fig08_error_char.dir/fig08_error_char.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_error_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
