file(REMOVE_RECURSE
  "../bench/micro_units"
  "../bench/micro_units.pdb"
  "CMakeFiles/micro_units.dir/micro_units.cpp.o"
  "CMakeFiles/micro_units.dir/micro_units.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
