file(REMOVE_RECURSE
  "../bench/fig20_cp"
  "../bench/fig20_cp.pdb"
  "CMakeFiles/fig20_cp.dir/fig20_cp.cpp.o"
  "CMakeFiles/fig20_cp.dir/fig20_cp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
