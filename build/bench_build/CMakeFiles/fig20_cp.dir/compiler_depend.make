# Empty compiler generated dependencies file for fig20_cp.
# This may be replaced when dependencies are built.
