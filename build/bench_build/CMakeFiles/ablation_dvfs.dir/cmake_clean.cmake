file(REMOVE_RECURSE
  "../bench/ablation_dvfs"
  "../bench/ablation_dvfs.pdb"
  "CMakeFiles/ablation_dvfs.dir/ablation_dvfs.cpp.o"
  "CMakeFiles/ablation_dvfs.dir/ablation_dvfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
