# Empty compiler generated dependencies file for fig15_hotspot.
# This may be replaced when dependencies are built.
