file(REMOVE_RECURSE
  "../bench/fig15_hotspot"
  "../bench/fig15_hotspot.pdb"
  "CMakeFiles/fig15_hotspot.dir/fig15_hotspot.cpp.o"
  "CMakeFiles/fig15_hotspot.dir/fig15_hotspot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
