file(REMOVE_RECURSE
  "../bench/ablation_ray_depth"
  "../bench/ablation_ray_depth.pdb"
  "CMakeFiles/ablation_ray_depth.dir/ablation_ray_depth.cpp.o"
  "CMakeFiles/ablation_ray_depth.dir/ablation_ray_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ray_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
