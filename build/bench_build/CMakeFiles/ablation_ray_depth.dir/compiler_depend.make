# Empty compiler generated dependencies file for ablation_ray_depth.
# This may be replaced when dependencies are built.
