file(REMOVE_RECURSE
  "../bench/table3_int_units"
  "../bench/table3_int_units.pdb"
  "CMakeFiles/table3_int_units.dir/table3_int_units.cpp.o"
  "CMakeFiles/table3_int_units.dir/table3_int_units.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_int_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
