# Empty compiler generated dependencies file for table3_int_units.
# This may be replaced when dependencies are built.
