# Empty compiler generated dependencies file for ablation_add_th.
# This may be replaced when dependencies are built.
