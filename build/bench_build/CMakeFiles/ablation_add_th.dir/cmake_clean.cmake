file(REMOVE_RECURSE
  "../bench/ablation_add_th"
  "../bench/ablation_add_th.pdb"
  "CMakeFiles/ablation_add_th.dir/ablation_add_th.cpp.o"
  "CMakeFiles/ablation_add_th.dir/ablation_add_th.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_add_th.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
