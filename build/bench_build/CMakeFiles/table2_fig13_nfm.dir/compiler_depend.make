# Empty compiler generated dependencies file for table2_fig13_nfm.
# This may be replaced when dependencies are built.
