file(REMOVE_RECURSE
  "../bench/table2_fig13_nfm"
  "../bench/table2_fig13_nfm.pdb"
  "CMakeFiles/table2_fig13_nfm.dir/table2_fig13_nfm.cpp.o"
  "CMakeFiles/table2_fig13_nfm.dir/table2_fig13_nfm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig13_nfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
