# Empty dependencies file for table4_acfpmul_nfm.
# This may be replaced when dependencies are built.
