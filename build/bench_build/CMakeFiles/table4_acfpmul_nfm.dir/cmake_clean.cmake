file(REMOVE_RECURSE
  "../bench/table4_acfpmul_nfm"
  "../bench/table4_acfpmul_nfm.pdb"
  "CMakeFiles/table4_acfpmul_nfm.dir/table4_acfpmul_nfm.cpp.o"
  "CMakeFiles/table4_acfpmul_nfm.dir/table4_acfpmul_nfm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_acfpmul_nfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
