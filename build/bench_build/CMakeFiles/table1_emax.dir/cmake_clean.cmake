file(REMOVE_RECURSE
  "../bench/table1_emax"
  "../bench/table1_emax.pdb"
  "CMakeFiles/table1_emax.dir/table1_emax.cpp.o"
  "CMakeFiles/table1_emax.dir/table1_emax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_emax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
