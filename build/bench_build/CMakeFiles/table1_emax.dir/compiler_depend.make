# Empty compiler generated dependencies file for table1_emax.
# This may be replaced when dependencies are built.
