file(REMOVE_RECURSE
  "../bench/fig21_art_gromacs"
  "../bench/fig21_art_gromacs.pdb"
  "CMakeFiles/fig21_art_gromacs.dir/fig21_art_gromacs.cpp.o"
  "CMakeFiles/fig21_art_gromacs.dir/fig21_art_gromacs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_art_gromacs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
