# Empty compiler generated dependencies file for fig21_art_gromacs.
# This may be replaced when dependencies are built.
