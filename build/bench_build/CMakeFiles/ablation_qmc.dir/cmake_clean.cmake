file(REMOVE_RECURSE
  "../bench/ablation_qmc"
  "../bench/ablation_qmc.pdb"
  "CMakeFiles/ablation_qmc.dir/ablation_qmc.cpp.o"
  "CMakeFiles/ablation_qmc.dir/ablation_qmc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
