# Empty compiler generated dependencies file for fig17_18_ray.
# This may be replaced when dependencies are built.
