file(REMOVE_RECURSE
  "../bench/fig17_18_ray"
  "../bench/fig17_18_ray.pdb"
  "CMakeFiles/fig17_18_ray.dir/fig17_18_ray.cpp.o"
  "CMakeFiles/fig17_18_ray.dir/fig17_18_ray.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_18_ray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
