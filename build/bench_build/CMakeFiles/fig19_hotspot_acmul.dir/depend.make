# Empty dependencies file for fig19_hotspot_acmul.
# This may be replaced when dependencies are built.
