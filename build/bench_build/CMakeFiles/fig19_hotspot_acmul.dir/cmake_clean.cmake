file(REMOVE_RECURSE
  "../bench/fig19_hotspot_acmul"
  "../bench/fig19_hotspot_acmul.pdb"
  "CMakeFiles/fig19_hotspot_acmul.dir/fig19_hotspot_acmul.cpp.o"
  "CMakeFiles/fig19_hotspot_acmul.dir/fig19_hotspot_acmul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_hotspot_acmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
