# Empty compiler generated dependencies file for fig09_acfpmul_error_char.
# This may be replaced when dependencies are built.
