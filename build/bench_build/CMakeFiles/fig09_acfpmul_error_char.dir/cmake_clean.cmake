file(REMOVE_RECURSE
  "../bench/fig09_acfpmul_error_char"
  "../bench/fig09_acfpmul_error_char.pdb"
  "CMakeFiles/fig09_acfpmul_error_char.dir/fig09_acfpmul_error_char.cpp.o"
  "CMakeFiles/fig09_acfpmul_error_char.dir/fig09_acfpmul_error_char.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_acfpmul_error_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
