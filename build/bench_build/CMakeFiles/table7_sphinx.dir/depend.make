# Empty dependencies file for table7_sphinx.
# This may be replaced when dependencies are built.
