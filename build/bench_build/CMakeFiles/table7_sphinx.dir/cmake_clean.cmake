file(REMOVE_RECURSE
  "../bench/table7_sphinx"
  "../bench/table7_sphinx.pdb"
  "CMakeFiles/table7_sphinx.dir/table7_sphinx.cpp.o"
  "CMakeFiles/table7_sphinx.dir/table7_sphinx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sphinx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
