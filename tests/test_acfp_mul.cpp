// Tests for the accuracy-configurable Mitchell multiplier: the 11.11% (log
// path) and 2.04% (full path, Ch. 4.1.2) bounds, truncation behaviour, and
// specials -- for both precisions via typed tests.
#include "ihw/acfp_mul.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ihw {
namespace {

template <typename T>
class AcfpMulTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(AcfpMulTest, FloatTypes);

template <typename T>
double sweep_max_err(AcfpPath path, int trunc, int n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  double max_rel = 0.0;
  for (int i = 0; i < n; ++i) {
    const T a = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))));
    const T b = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))));
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    const double approx = static_cast<double>(acfp_mul(a, b, path, trunc));
    max_rel = std::max(max_rel, std::fabs(approx - exact) / std::fabs(exact));
  }
  return max_rel;
}

TYPED_TEST(AcfpMulTest, LogPathBoundedByMitchellLimit) {
  const double e = sweep_max_err<TypeParam>(AcfpPath::Log, 0, 400000, 31);
  EXPECT_LE(e, 1.0 / 9.0 + 1e-7);
  EXPECT_GT(e, 0.105);  // sweep reaches close to 11.11%
}

TYPED_TEST(AcfpMulTest, FullPathBoundedByTwoPointZeroFour) {
  const double e = sweep_max_err<TypeParam>(AcfpPath::Full, 0, 400000, 32);
  EXPECT_LE(e, 1.0 / 49.0 + 1e-4);  // 2.04% + alignment-truncation slack
  EXPECT_GT(e, 0.017);
}

TYPED_TEST(AcfpMulTest, FullPathStrictlyMoreAccurateThanLogPathOnAverage) {
  using T = TypeParam;
  common::Xoshiro256 rng(33);
  double sum_log = 0.0, sum_full = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const T a = static_cast<T>(rng.uniform(1.0, 2.0));
    const T b = static_cast<T>(rng.uniform(1.0, 2.0));
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    sum_log += std::fabs(static_cast<double>(acfp_mul(a, b, AcfpPath::Log)) - exact);
    sum_full += std::fabs(static_cast<double>(acfp_mul(a, b, AcfpPath::Full)) - exact);
  }
  EXPECT_LT(sum_full, sum_log * 0.5);
}

TYPED_TEST(AcfpMulTest, PowersOfTwoExactOnBothPaths) {
  using T = TypeParam;
  for (int i = -12; i <= 12; ++i) {
    const T a = static_cast<T>(std::ldexp(1.0, i));
    EXPECT_EQ(acfp_mul(a, T(8), AcfpPath::Log, 0), a * T(8));
    EXPECT_EQ(acfp_mul(a, T(8), AcfpPath::Full, 0), a * T(8));
  }
}

TYPED_TEST(AcfpMulTest, SignsAndSpecials) {
  using T = TypeParam;
  const T inf = std::numeric_limits<T>::infinity();
  const T nan = std::numeric_limits<T>::quiet_NaN();
  for (AcfpPath path : {AcfpPath::Log, AcfpPath::Full}) {
    EXPECT_TRUE(std::isnan(acfp_mul(nan, T(2), path)));
    EXPECT_TRUE(std::isnan(acfp_mul(inf, T(0), path)));
    EXPECT_EQ(acfp_mul(inf, T(-2), path), -inf);
    EXPECT_EQ(acfp_mul(T(0), T(5), path), T(0));
    EXPECT_LT(acfp_mul(T(-1.5), T(1.5), path), T(0));
    EXPECT_GT(acfp_mul(T(-1.5), T(-1.5), path), T(0));
  }
}

TYPED_TEST(AcfpMulTest, Commutative) {
  using T = TypeParam;
  common::Xoshiro256 rng(34);
  for (int i = 0; i < 100000; ++i) {
    const T a = static_cast<T>(rng.uniform(0.1, 10.0));
    const T b = static_cast<T>(rng.uniform(0.1, 10.0));
    for (AcfpPath path : {AcfpPath::Log, AcfpPath::Full}) {
      ASSERT_EQ(acfp_mul(a, b, path, 3), acfp_mul(b, a, path, 3));
    }
  }
}

// Truncation sweep: max error grows monotonically with truncated bits, and
// the paper's calibration points reproduce.
class AcfpTruncSweep32 : public ::testing::TestWithParam<int> {};

TEST_P(AcfpTruncSweep32, ErrorGrowsWithTruncationAndStaysBounded) {
  const int tr = GetParam();
  const double e_log = sweep_max_err<float>(AcfpPath::Log, tr, 150000, 35);
  const double e_log_more =
      sweep_max_err<float>(AcfpPath::Log, tr + 2, 150000, 35);
  EXPECT_LE(e_log, e_log_more + 1e-9);
  // Log-path error <= Mitchell bound + input-truncation contribution.
  EXPECT_LE(e_log, 1.0 / 9.0 + 2.0 * std::ldexp(1.0, tr - 23) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(TruncGrid, AcfpTruncSweep32,
                         ::testing::Values(0, 4, 8, 12, 15, 17, 19, 21));

TEST(AcfpMul32, PaperCalibrationPoints) {
  // Log path tr19 -> ~18% max error (paper); full path tr0 -> 2.04%.
  EXPECT_NEAR(sweep_max_err<float>(AcfpPath::Log, 19, 400000, 36), 0.18, 0.012);
  EXPECT_NEAR(sweep_max_err<float>(AcfpPath::Full, 0, 400000, 37), 0.0204,
              0.0015);
}

TEST(AcfpMul64, PaperCalibrationPoints) {
  // 64-bit log path tr48 -> ~18.07% (paper's 49X operating point).
  EXPECT_NEAR(sweep_max_err<double>(AcfpPath::Log, 48, 300000, 38), 0.1807,
              0.012);
  EXPECT_NEAR(sweep_max_err<double>(AcfpPath::Full, 0, 300000, 39), 0.0204,
              0.0015);
}

TEST(AcfpMul, TruncationClampedToFractionWidth) {
  // trunc > frac_bits behaves as full truncation, not UB.
  const float r = acfp_mul(1.9f, 1.9f, AcfpPath::Log, 99);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_EQ(r, acfp_mul(1.9f, 1.9f, AcfpPath::Log, 23));
  EXPECT_EQ(acfp_mul(1.9f, 1.9f, AcfpPath::Full, -5),
            acfp_mul(1.9f, 1.9f, AcfpPath::Full, 0));
}

TEST(AcfpMul, FullTruncationDegeneratesToExponentOnlyMultiply) {
  // With every fraction bit truncated both paths see Ma = Mb = 0.
  common::Xoshiro256 rng(40);
  for (int i = 0; i < 50000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    const float r = acfp_mul(a, b, AcfpPath::Log, 23);
    // Result must be the product of the pure powers of two.
    EXPECT_EQ(r, 1.0f);
  }
}

TEST(AcfpMul, OverflowSaturatesUnderflowFlushes) {
  const float big = std::ldexp(1.9f, 120);
  EXPECT_TRUE(std::isinf(acfp_mul(big, big, AcfpPath::Full)));
  const float small = std::ldexp(1.1f, -100);
  EXPECT_EQ(acfp_mul(small, small, AcfpPath::Log), 0.0f);
}

}  // namespace
}  // namespace ihw
