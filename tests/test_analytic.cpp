// Cross-checks the closed-form error analysis (Ch. 4.1) against the
// numerical characterization -- the two halves of the paper's error
// methodology must agree.
#include "error/analytic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "error/characterize.h"

namespace ihw::error::analytic {
namespace {

TEST(Analytic, PaperHeadlineValues) {
  // The numbers printed in Table 1 and Ch. 3/4.
  EXPECT_NEAR(rcp_emax(), 0.0588, 0.0006);
  EXPECT_NEAR(rsqrt_emax(), 0.1111, 0.0010);
  EXPECT_NEAR(sqrt_emax(), 0.1111, 0.0010);
  EXPECT_NEAR(mitchell_emax(), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(simple_mul_emax(), 0.25, 1e-12);
  EXPECT_NEAR(full_path_emax(), 1.0 / 49.0, 1e-6);
  EXPECT_NEAR(exp2_emax(), 0.0615, 0.0005);
  // Residual extremes of the log2 fit: 0.0650 at m=1, -0.0282 interior.
  EXPECT_NEAR(log2_abs_residual(), 0.0650, 0.001);
}

TEST(Analytic, AdderCaseBoundsAtThEight) {
  // Ch. 4.1.1's worked values for TH = 8.
  EXPECT_NEAR(adder_add_beyond_th(8), 1.0 / 129.0, 1e-12);   // < 0.775%
  EXPECT_NEAR(adder_add_within_th(8), 1.0 / 512.0, 1e-12);   // ~ 0.2%
  EXPECT_NEAR(adder_sub_beyond_th(8), 1.0 / 127.0, 1e-12);   // < 0.787%
  EXPECT_LT(adder_add_beyond_th(8), 0.00776);
  EXPECT_LT(adder_sub_beyond_th(8), 0.00788);
}

TEST(Analytic, AdderBoundsMonotoneInTh) {
  for (int th = 2; th < 27; ++th) {
    EXPECT_GT(adder_add_beyond_th(th), adder_add_beyond_th(th + 1));
    EXPECT_GT(adder_sub_beyond_th(th), adder_sub_beyond_th(th + 1));
    EXPECT_GT(adder_add_bound(th), adder_add_bound(th + 1));
  }
}

TEST(Analytic, MeasuredMaxErrorsApproachAnalyticBounds) {
  struct Case {
    UnitKind kind;
    int param;
    double bound;
  };
  const Case cases[] = {
      {UnitKind::Rcp, 0, rcp_emax()},
      {UnitKind::Rsqrt, 0, rsqrt_emax()},
      {UnitKind::Sqrt, 0, sqrt_emax()},
      {UnitKind::Exp2, 0, exp2_emax()},
      {UnitKind::FpMul, 0, simple_mul_emax()},
      {UnitKind::AcfpLog, 0, mitchell_emax()},
      {UnitKind::AcfpFull, 0, full_path_emax()},
  };
  for (const auto& c : cases) {
    const auto res = characterize32(c.kind, c.param, 400000);
    // Measured max never exceeds the analytic bound (plus float slack)...
    EXPECT_LE(res.stats.max_rel(), c.bound * 1.005 + 1e-6) << res.label;
    // ...and the quasi-MC sweep gets within 5% of it (tightness).
    EXPECT_GE(res.stats.max_rel(), c.bound * 0.95) << res.label;
  }
}

TEST(Analytic, AdderMeasuredWithinCaseBounds) {
  for (int th : {4, 8, 12}) {
    const auto res = characterize32(UnitKind::FpAdd, th, 300000);
    EXPECT_LE(res.stats.max_rel(), adder_add_bound(th) * 1.005) << th;
    EXPECT_GE(res.stats.max_rel(), adder_add_bound(th) * 0.5) << th;
  }
}

TEST(Analytic, BitTruncBoundMatchesMeasurement) {
  for (int tr : {8, 16, 21}) {
    const auto res = characterize32(UnitKind::BitTrunc, tr, 300000);
    const double bound = bit_trunc_emax(tr, 23);
    EXPECT_LE(res.stats.max_rel(), bound);
    EXPECT_GE(res.stats.max_rel(), bound * 0.7);
  }
}

TEST(Analytic, FullPathDerivationSegmentsAgree) {
  // The paper proves both the no-carry and the carry segment peak at 1/49;
  // numerically scanning off the symmetric diagonal must not beat it.
  double worst = 0.0;
  for (double xa = 0.01; xa < 1.0; xa += 0.005) {
    for (double xb = 0.01; xb < 1.0; xb += 0.005) {
      double eps;
      if (xa + xb < 1.0) {
        eps = 1.0 / (9.0 / (xa * xb) + 3.0 / xa + 3.0 / xb + 1.0);
      } else {
        eps = (1.0 - xa) * (1.0 - xb) / ((3.0 + xa) * (3.0 + xb));
      }
      worst = std::max(worst, eps);
    }
  }
  EXPECT_LE(worst, 1.0 / 49.0 + 1e-9);
  EXPECT_NEAR(worst, 1.0 / 49.0, 2e-4);
}

}  // namespace
}  // namespace ihw::error::analytic
