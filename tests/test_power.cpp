// Tests for the synthesis database (Tables 2/3/4 anchors), the multiplier
// power curves, and the Fig. 12 system-savings estimator.
#include "power/nfm.h"
#include "power/syspower.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ihw::power {
namespace {

TEST(SynthesisDb, DwMultiplierAnchorsMatchTableFour) {
  const SynthesisDb db;
  EXPECT_NEAR(db.multiplier(MulMode::Precise, 0, false).power_mw, 36.63, 1e-9);
  EXPECT_NEAR(db.multiplier(MulMode::Precise, 0, true).power_mw, 119.9, 1e-9);
  EXPECT_NEAR(db.multiplier(MulMode::MitchellFull, 0, false).power_mw, 17.93,
              0.01);
  EXPECT_NEAR(db.multiplier(MulMode::MitchellFull, 0, true).power_mw, 38.17,
              0.01);
}

TEST(SynthesisDb, TableTwoRatiosReproduced) {
  const SynthesisDb db;
  const struct {
    OpKind op;
    double power, latency;
  } rows[] = {
      {OpKind::FAdd, 0.31, 0.74},  {OpKind::FDiv, 0.84, 0.85},
      {OpKind::FRcp, 0.20, 0.34},  {OpKind::FRsqrt, 0.061, 0.109},
      {OpKind::FSqrt, 1.16, 0.33}, {OpKind::FLog2, 0.30, 0.79},
      {OpKind::FFma, 0.08, 0.70},
  };
  for (const auto& r : rows) {
    const auto n = normalized(db.ihw(r.op), db.dwip(r.op));
    EXPECT_NEAR(n.power, r.power, 1e-9) << to_string(r.op);
    EXPECT_NEAR(n.latency, r.latency, 1e-9) << to_string(r.op);
  }
  // The simple multiplier (Table 2's ifpmul row): ~0.040 power ratio.
  const auto m = normalized(db.multiplier(MulMode::ImpreciseSimple, 0, false),
                            db.dwip(OpKind::FMul));
  EXPECT_NEAR(m.power, 0.040, 0.002);
  EXPECT_NEAR(m.latency, 0.218, 0.01);
}

TEST(SynthesisDb, TableThreeIntegerUnits) {
  const SynthesisDb db;
  EXPECT_NEAR(db.int_adder25().power_mw, 0.24, 1e-9);
  EXPECT_NEAR(db.int_mult24().power_mw, 8.50, 1e-9);
  EXPECT_NEAR(db.int_mult24().power_mw / db.int_adder25().power_mw, 35.4, 0.1);
  EXPECT_NEAR(db.int_mult24().latency_ns / db.int_adder25().latency_ns, 3.0,
              0.1);
}

TEST(SynthesisDb, LogPathHitsPaperOperatingPoints) {
  const SynthesisDb db;
  // >25X at tr19 for 32-bit (paper: "more than 25X ... 26X").
  const double red32 = db.multiplier(MulMode::Precise, 0, false).power_mw /
                       db.multiplier(MulMode::MitchellLog, 19, false).power_mw;
  EXPECT_GT(red32, 25.0);
  EXPECT_LT(red32, 32.0);
  // ~49X at tr48 for 64-bit.
  const double red64 = db.multiplier(MulMode::Precise, 0, true).power_mw /
                       db.multiplier(MulMode::MitchellLog, 48, true).power_mw;
  EXPECT_NEAR(red64, 49.0, 1.5);
}

TEST(SynthesisDb, BitTruncationSaturatesNearPaperPoint) {
  const SynthesisDb db;
  const double dw = db.multiplier(MulMode::Precise, 0, false).power_mw;
  // ~2.3X at tr=21, and the curve can never beat the fixed IEEE overhead.
  EXPECT_NEAR(dw / db.multiplier(MulMode::BitTruncated, 21, false).power_mw,
              2.3, 0.15);
  EXPECT_LT(dw / db.multiplier(MulMode::BitTruncated, 23, false).power_mw,
            2.5);
}

TEST(SynthesisDb, MultiplierPowerMonotonicInTruncation) {
  const SynthesisDb db;
  for (MulMode mode : {MulMode::MitchellLog, MulMode::MitchellFull,
                       MulMode::BitTruncated}) {
    for (bool is64 : {false, true}) {
      double prev = db.multiplier(mode, 0, is64).power_mw;
      const int fb = is64 ? 52 : 23;
      for (int tr = 1; tr <= fb; ++tr) {
        const double cur = db.multiplier(mode, tr, is64).power_mw;
        ASSERT_LE(cur, prev + 1e-12)
            << to_string(mode) << " tr=" << tr << " is64=" << is64;
        prev = cur;
      }
    }
  }
}

TEST(SynthesisDb, ImpreciseUnitsNeverExceedLatencyOfBaseline) {
  const SynthesisDb db;
  for (int i = 0; i < kNumOpKinds; ++i) {
    const auto op = static_cast<OpKind>(i);
    EXPECT_LE(db.ihw(op).latency_ns, db.dwip(op).latency_ns + 1e-12);
  }
}

TEST(SynthesisDb, ForConfigRoutesPerUnitEnables) {
  const SynthesisDb db;
  IhwConfig cfg;
  cfg.rcp_enabled = true;
  EXPECT_EQ(db.for_config(OpKind::FRcp, cfg).power_mw,
            db.ihw(OpKind::FRcp).power_mw);
  EXPECT_EQ(db.for_config(OpKind::FSqrt, cfg).power_mw,
            db.dwip(OpKind::FSqrt).power_mw);
  cfg.mul_mode = MulMode::MitchellLog;
  cfg.mul_trunc = 19;
  EXPECT_EQ(db.for_config(OpKind::FMul, cfg).power_mw,
            db.multiplier(MulMode::MitchellLog, 19, false).power_mw);
}

TEST(SynthesisDb, AdderThresholdScalesPowerAroundAnchor) {
  const SynthesisDb db;
  const double p8 = db.ihw(OpKind::FAdd, 8).power_mw;
  EXPECT_LT(db.ihw(OpKind::FAdd, 4).power_mw, p8);
  EXPECT_GT(db.ihw(OpKind::FAdd, 16).power_mw, p8);
}

TEST(PipelineLatency, MatchesFigTwelveExpression) {
  // acc ops on a continuously operating pipeline: (acc-1+ceil(lat))*period.
  const double period = 1.0 / kCoreClockGhz;
  EXPECT_DOUBLE_EQ(pipeline_latency_ns(0, 1.7), 0.0);
  EXPECT_DOUBLE_EQ(pipeline_latency_ns(1, 1.7), 2.0 * period);
  EXPECT_DOUBLE_EQ(pipeline_latency_ns(100, 1.7), 101.0 * period);
  EXPECT_DOUBLE_EQ(pipeline_latency_ns(100, 0.37), 100.0 * period);
}

TEST(EstimateSavings, PreciseConfigSavesNothing) {
  const SynthesisDb db;
  OpCounts ops;
  ops[OpKind::FAdd] = 1000;
  ops[OpKind::FMul] = 1000;
  ops[OpKind::FRcp] = 300;
  const auto s = estimate_savings(ops, IhwConfig::precise(), {0.25, 0.10}, db);
  EXPECT_NEAR(s.fpu_power_impr, 0.0, 1e-12);
  EXPECT_NEAR(s.sfu_power_impr, 0.0, 1e-12);
  EXPECT_NEAR(s.system_power_impr, 0.0, 1e-12);
}

TEST(EstimateSavings, AllImpreciseSavingsInUnitRange) {
  const SynthesisDb db;
  OpCounts ops;
  ops[OpKind::FAdd] = 9000;
  ops[OpKind::FMul] = 5000;
  ops[OpKind::FRcp] = 3000;
  const auto s =
      estimate_savings(ops, IhwConfig::all_imprecise(), {0.25, 0.10}, db);
  EXPECT_GT(s.fpu_power_impr, 0.5);
  EXPECT_LT(s.fpu_power_impr, 1.0);
  EXPECT_GT(s.sfu_power_impr, 0.5);
  EXPECT_LT(s.sfu_power_impr, 1.0);
  // System savings bounded by the arithmetic share.
  EXPECT_LE(s.system_power_impr, 0.35 + 1e-12);
  EXPECT_GT(s.system_power_impr, 0.15);
}

TEST(EstimateSavings, SystemSavingsIsShareWeightedSum) {
  const SynthesisDb db;
  OpCounts ops;
  ops[OpKind::FMul] = 10000;
  ops[OpKind::FRcp] = 10000;
  const UnitShares shares{0.3, 0.2};
  const auto s = estimate_savings(ops, IhwConfig::all_imprecise(), shares, db);
  EXPECT_NEAR(s.system_power_impr,
              shares.fpu * s.fpu_power_impr + shares.sfu * s.sfu_power_impr,
              1e-12);
}

TEST(EstimateSavings, MulOnlyConfigOnlyTouchesFpu) {
  const SynthesisDb db;
  OpCounts ops;
  ops[OpKind::FMul] = 10000;
  ops[OpKind::FRcp] = 10000;
  const auto s = estimate_savings(
      ops, IhwConfig::mul_only(MulMode::MitchellLog, 19), {0.3, 0.2}, db);
  EXPECT_GT(s.fpu_power_impr, 0.9);
  EXPECT_NEAR(s.sfu_power_impr, 0.0, 1e-12);
}

TEST(EstimateSavings, IsqrtCanCostPower) {
  // isqrt's power ratio is 1.16: a sqrt-only workload under an sqrt-enabled
  // config shows a (small) negative SFU improvement, as Table 2 implies.
  const SynthesisDb db;
  OpCounts ops;
  ops[OpKind::FSqrt] = 10000;
  IhwConfig cfg;
  cfg.sqrt_enabled = true;
  const auto s = estimate_savings(ops, cfg, {0.1, 0.2}, db);
  EXPECT_LT(s.sfu_power_impr, 0.0);
}

TEST(OpCounts, ClassTotals) {
  OpCounts ops;
  ops[OpKind::FAdd] = 1;
  ops[OpKind::FMul] = 2;
  ops[OpKind::FFma] = 3;
  ops[OpKind::FRcp] = 4;
  ops[OpKind::IAdd] = 5;
  EXPECT_EQ(ops.total(UnitClass::FPU), 6u);
  EXPECT_EQ(ops.total(UnitClass::SFU), 4u);
  EXPECT_EQ(ops.total(UnitClass::INT), 5u);
  EXPECT_EQ(ops.total(), 15u);
}

TEST(UnitClassification, MatchesPaperGrouping) {
  EXPECT_EQ(unit_class(OpKind::FAdd), UnitClass::FPU);
  EXPECT_EQ(unit_class(OpKind::FMul), UnitClass::FPU);
  EXPECT_EQ(unit_class(OpKind::FFma), UnitClass::FPU);
  EXPECT_EQ(unit_class(OpKind::FDiv), UnitClass::SFU);
  EXPECT_EQ(unit_class(OpKind::FRcp), UnitClass::SFU);
  EXPECT_EQ(unit_class(OpKind::FRsqrt), UnitClass::SFU);
  EXPECT_EQ(unit_class(OpKind::FSqrt), UnitClass::SFU);
  EXPECT_EQ(unit_class(OpKind::FLog2), UnitClass::SFU);
  EXPECT_EQ(unit_class(OpKind::IAdd), UnitClass::INT);
  EXPECT_EQ(unit_class(OpKind::IMul), UnitClass::INT);
}

}  // namespace
}  // namespace ihw::power
