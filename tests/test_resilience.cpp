// Tests for the sweep resilience layer (DESIGN.md §12): record checksums
// and quarantine, the crash-safe journal and --resume replay, torn-write
// safety of concurrent stores, FailPolicy isolation vs deterministic
// fail-fast, graceful drain, the soft-deadline watchdog, and per-task
// exception capture in the runtime.
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/parallel.h"
#include "sweep/cache.h"
#include "sweep/health.h"
#include "sweep/journal.h"
#include "sweep/json.h"
#include "sweep/sweep.h"

namespace ihw::sweep {
namespace {

namespace fs = std::filesystem;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

EvalRecord sample_record(double salt = 0.0) {
  EvalRecord rec;
  rec.set_metric("quality", 0.123456789 + salt);
  rec.set_metric("mae", 1e-7 * (1.0 + salt));
  rec.perf.counts[0] = 1000;
  rec.perf.counts[1] = 2000;
  rec.faults.injected[0] = 7;
  return rec;
}

void expect_record_identical(const EvalRecord& a, const EvalRecord& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].first, b.metrics[i].first);
    EXPECT_EQ(bits(a.metrics[i].second), bits(b.metrics[i].second));
  }
  EXPECT_EQ(a.perf.counts, b.perf.counts);
  EXPECT_EQ(a.faults.injected, b.faults.injected);
  EXPECT_EQ(a.has_char, b.has_char);
}

std::string write_record_text() { return EvalCache::serialize(42, sample_record()); }

// A guard so a test that requests a drain cannot leak the flag into later
// tests (the flag is process-global, like the signal it models).
struct DrainGuard {
  ~DrainGuard() { reset_drain(); }
};

// ----------------------------------------------------------------- checksum

TEST(RecordChecksum, RoundTripsIntact) {
  const std::string text = write_record_text();
  EvalRecord back;
  ASSERT_TRUE(EvalCache::deserialize(text, 42, &back));
  expect_record_identical(sample_record(), back);
}

TEST(RecordChecksum, EveryTruncationRejectedOrEquivalent) {
  // Any prefix that loses payload or checksum bytes must be rejected; the
  // one benign truncation (dropping the trailing newline after the checksum
  // line) may parse, but then must yield the identical record.
  const std::string text = write_record_text();
  for (std::size_t len = 0; len < text.size(); ++len) {
    EvalRecord out;
    if (EvalCache::deserialize(text.substr(0, len), 42, &out)) {
      EXPECT_EQ(len, text.size() - 1)
          << "truncation to " << len << " bytes accepted";
      expect_record_identical(sample_record(), out);
    }
  }
}

TEST(RecordChecksum, FuzzedMutationsNeverYieldWrongRecord) {
  // Seeded fuzz over three corruption families: single bit flips, random
  // byte stomps, and line swaps (a key-reordering editor or a buggy sync
  // tool). The contract is not "always reject" -- a mutation confined to
  // trailing whitespace can be benign -- but "never crash and never return
  // a record that differs from the original".
  const std::string text = write_record_text();
  const EvalRecord ref = sample_record();
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mut = text;
    switch (rng() % 3) {
      case 0: {  // single bit flip
        const std::size_t pos = rng() % mut.size();
        mut[pos] = static_cast<char>(mut[pos] ^ (1u << (rng() % 8)));
        break;
      }
      case 1: {  // stomp a short random range
        const std::size_t pos = rng() % mut.size();
        const std::size_t len = 1 + rng() % 8;
        for (std::size_t j = pos; j < mut.size() && j < pos + len; ++j)
          mut[j] = static_cast<char>(rng() & 0xff);
        break;
      }
      default: {  // swap two whole lines
        std::vector<std::string> lines;
        std::size_t start = 0;
        while (start < mut.size()) {
          std::size_t nl = mut.find('\n', start);
          if (nl == std::string::npos) nl = mut.size() - 1;
          lines.push_back(mut.substr(start, nl - start + 1));
          start = nl + 1;
        }
        if (lines.size() < 2) continue;
        const std::size_t a = rng() % lines.size();
        const std::size_t b = rng() % lines.size();
        std::swap(lines[a], lines[b]);
        mut.clear();
        for (const auto& l : lines) mut += l;
        if (mut == text) continue;
        break;
      }
    }
    EvalRecord out;
    if (EvalCache::deserialize(mut, 42, &out)) {
      // Accepted: must be byte-for-byte the original record.
      expect_record_identical(ref, out);
    }
  }
}

TEST(RecordChecksum, WrongFingerprintRejected) {
  EvalRecord out;
  EXPECT_FALSE(EvalCache::deserialize(write_record_text(), 43, &out));
}

// --------------------------------------------------------------- quarantine

TEST(Quarantine, CorruptDiskRecordIsQuarantinedAndReevaluated) {
  const std::string dir = testing::TempDir() + "ihw_resil_quar";
  fs::remove_all(dir);
  const std::uint64_t fp = 0xabcdef12345678ull;
  std::string rec_path;
  {
    EvalCache cache(dir);
    cache.store(fp, sample_record());
    for (const auto& e : fs::recursive_directory_iterator(dir))
      if (e.is_regular_file() && e.path().extension() == ".rec")
        rec_path = e.path().string();
  }
  ASSERT_FALSE(rec_path.empty());
  {
    // Flip one payload byte in place.
    std::fstream f(rec_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('~');
  }
  EvalCache fresh(dir);
  EXPECT_FALSE(fresh.lookup(fp).has_value());  // rejected, not misread
  EXPECT_EQ(fresh.quarantines(), 1u);
  EXPECT_FALSE(fs::exists(rec_path));  // moved out of the cache tree
  EXPECT_FALSE(fs::is_empty(dir + "/quarantine"));
  // The slot is reusable: a re-evaluation stores and round-trips again.
  fresh.store(fp, sample_record());
  EvalCache again(dir);
  EXPECT_TRUE(again.lookup(fp).has_value());
  fs::remove_all(dir);
}

TEST(Quarantine, ConcurrentStoresLeaveNoTornFiles) {
  // Two caches (standing in for two processes) hammer the same fingerprint
  // set; distinct tmp names mean no writer can rename another writer's
  // half-written file into place.
  const std::string dir = testing::TempDir() + "ihw_resil_torn";
  fs::remove_all(dir);
  {
    EvalCache a(dir), b(dir);
    std::thread ta([&] {
      for (int i = 0; i < 50; ++i) a.store(7, sample_record(0.0));
    });
    std::thread tb([&] {
      for (int i = 0; i < 50; ++i) b.store(7, sample_record(0.0));
    });
    ta.join();
    tb.join();
  }
  for (const auto& e : fs::recursive_directory_iterator(dir))
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
        << "stale tmp file: " << e.path();
  EvalCache fresh(dir);
  const auto back = fresh.lookup(7);
  ASSERT_TRUE(back.has_value());
  expect_record_identical(sample_record(0.0), *back);
  EXPECT_EQ(fresh.quarantines(), 0u);
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ journal

TEST(JournalTest, ReplayRestoresEveryRecordBitExactly) {
  const std::string dir = testing::TempDir() + "ihw_resil_journal";
  fs::remove_all(dir);
  {
    EvalCache cache(dir);
    cache.attach_journal("t", /*resume=*/false);
    for (int i = 0; i < 3; ++i)
      cache.store(100 + i, sample_record(i * 0.5));
  }
  // Delete the per-fingerprint record files: the journal alone must be able
  // to restore the run.
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".rec")
      fs::remove(e.path());
  EvalCache resumed(dir);
  resumed.attach_journal("t", /*resume=*/true);
  EXPECT_EQ(resumed.journal_replayed(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto back = resumed.lookup(100 + i);
    ASSERT_TRUE(back.has_value()) << "fp " << 100 + i;
    expect_record_identical(sample_record(i * 0.5), *back);
  }
  fs::remove_all(dir);
}

TEST(JournalTest, TruncatedTailIsDroppedNotPropagated) {
  const std::string dir = testing::TempDir() + "ihw_resil_jtail";
  fs::remove_all(dir);
  std::string jpath;
  {
    EvalCache cache(dir);
    cache.attach_journal("t", false);
    cache.store(1, sample_record(1.0));
    cache.store(2, sample_record(2.0));
    jpath = cache.journal()->path();
  }
  // Chop the last 40 bytes: entry 2's frame is now torn.
  const auto size = fs::file_size(jpath);
  fs::resize_file(jpath, size - 40);
  EvalCache resumed(dir);
  // Remove the .rec files so lookups can only be served by the journal.
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".rec")
      fs::remove(e.path());
  resumed.attach_journal("t", true);
  EXPECT_EQ(resumed.journal_replayed(), 1u);
  EXPECT_TRUE(resumed.lookup(1).has_value());
  EXPECT_FALSE(resumed.lookup(2).has_value());
  // Appending after a torn replay preserves the valid prefix.
  resumed.store(3, sample_record(3.0));
  EvalCache again(dir);
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".rec")
      fs::remove(e.path());
  again.attach_journal("t", true);
  EXPECT_EQ(again.journal_replayed(), 2u);
  fs::remove_all(dir);
}

TEST(JournalTest, NonResumeAttachDiscardsStaleJournal) {
  const std::string dir = testing::TempDir() + "ihw_resil_jfresh";
  fs::remove_all(dir);
  {
    EvalCache cache(dir);
    cache.attach_journal("t", false);
    cache.store(9, sample_record());
  }
  EvalCache fresh(dir);
  fresh.attach_journal("t", /*resume=*/false);
  EXPECT_EQ(fresh.journal_replayed(), 0u);
  EXPECT_FALSE(fs::exists(fresh.journal()->path()));
  fs::remove_all(dir);
}

TEST(JournalTest, ResumeSweepsStaleTmpFiles) {
  const std::string dir = testing::TempDir() + "ihw_resil_jtmp";
  fs::remove_all(dir);
  {
    EvalCache cache(dir);
    cache.attach_journal("t", false);
    cache.store(1, sample_record());
  }
  // Simulate a writer killed between tmp write and rename.
  const std::string stale = dir + "/" + std::string(kSchemaTag) +
                            "/deadbeef.rec.tmp.999.0";
  std::ofstream(stale) << "half a record";
  EvalCache resumed(dir);
  resumed.attach_journal("t", true);
  EXPECT_FALSE(fs::exists(stale));
  fs::remove_all(dir);
}

TEST(JournalTest, ReattachSameNameIsIdempotentNoOp) {
  const std::string dir = testing::TempDir() + "ihw_resil_jreatt";
  fs::remove_all(dir);
  EvalCache cache(dir);
  cache.attach_journal("t", /*resume=*/false);
  cache.store(11, sample_record(0.25));
  Journal* before = cache.journal();
  // A long-running daemon may defensively re-attach; the committed journal,
  // its entries, and the replay counter must all be untouched.
  cache.attach_journal("t", /*resume=*/false);
  cache.attach_journal("t", /*resume=*/true);
  EXPECT_EQ(cache.journal(), before);
  EXPECT_EQ(cache.journal_replayed(), 0u);

  // The journaled record still replays into a fresh cache afterwards.
  EvalCache resumed(dir);
  resumed.attach_journal("t", /*resume=*/true);
  EXPECT_EQ(resumed.journal_replayed(), 1u);
  const auto rec = resumed.lookup(11);
  ASSERT_TRUE(rec.has_value());
  expect_record_identical(*rec, sample_record(0.25));
  fs::remove_all(dir);
}

TEST(JournalTest, ReattachDifferentNameThrowsLogicError) {
  const std::string dir = testing::TempDir() + "ihw_resil_jrename";
  fs::remove_all(dir);
  EvalCache cache(dir);
  cache.attach_journal("first", false);
  EXPECT_THROW(cache.attach_journal("second", false), std::logic_error);
  // The original journal survives the rejected re-attach.
  ASSERT_NE(cache.journal(), nullptr);
  cache.store(5, sample_record());
  EvalCache resumed(dir);
  resumed.attach_journal("first", true);
  EXPECT_EQ(resumed.journal_replayed(), 1u);
  fs::remove_all(dir);
}

// ----------------------------------------------------------------- run_grid

std::vector<GridPoint> mixed_points(int n, int failing) {
  std::vector<GridPoint> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<std::uint64_t>(500 + i), [i, failing] {
                     if (i == failing) throw std::runtime_error("boom");
                     return sample_record(i);
                   }});
  }
  return pts;
}

TEST(FailPolicyTest, IsolateCompletesGridWithOneFailure) {
  FailPolicy policy;
  policy.isolate = true;
  policy.fail_fast = false;
  const auto out = run_grid(mixed_points(6, 2), nullptr, policy, 3);
  ASSERT_EQ(out.status.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    if (i == 2) {
      EXPECT_EQ(out.status[i], PointStatus::Failed);
      EXPECT_NE(out.error_message(i).find("boom"), std::string::npos);
      EXPECT_TRUE(out.records[i].metrics.empty());  // no partial result
    } else {
      EXPECT_EQ(out.status[i], PointStatus::Evaluated);
      expect_record_identical(sample_record(i), out.records[i]);
    }
  }
  EXPECT_EQ(out.health.failures, 1u);
  EXPECT_EQ(out.health.evaluated, 5u);
  EXPECT_EQ(out.health.points, 6u);
}

TEST(FailPolicyTest, FailFastRethrowsFirstFailureInPointOrder) {
  std::vector<GridPoint> pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back({static_cast<std::uint64_t>(600 + i), [i]() -> EvalRecord {
                     if (i == 3) throw std::runtime_error("fail-three");
                     if (i == 6) throw std::runtime_error("fail-six");
                     return sample_record(i);
                   }});
  }
  try {
    run_grid(pts, nullptr, FailPolicy{}, 4);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    // Deterministic regardless of which worker faulted first.
    EXPECT_STREQ(e.what(), "fail-three");
  }
}

TEST(FailPolicyTest, IsolatedFailureStillCachesHealthyPoints) {
  const std::string dir = testing::TempDir() + "ihw_resil_isocache";
  fs::remove_all(dir);
  EvalCache cache(dir);
  FailPolicy policy;
  policy.isolate = true;
  policy.fail_fast = false;
  run_grid(mixed_points(4, 1), &cache, policy, 2);
  EXPECT_EQ(cache.stores(), 3u);  // the failed point must not be cached
  EXPECT_FALSE(cache.lookup(501).has_value());
  EXPECT_TRUE(cache.lookup(502).has_value());
  fs::remove_all(dir);
}

TEST(DrainTest, RequestedDrainSkipsUnstartedPoints) {
  DrainGuard guard;
  request_drain();
  const auto out = run_grid(mixed_points(5, -1), nullptr,
                            FailPolicy{}, 2);
  ASSERT_EQ(out.status.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(out.status[i], PointStatus::Skipped);
  EXPECT_EQ(out.health.skipped, 5u);
  EXPECT_EQ(out.health.evaluated, 0u);
}

TEST(DrainTest, FlagIsStickyUntilReset) {
  DrainGuard guard;
  EXPECT_FALSE(drain_requested());
  request_drain();
  EXPECT_TRUE(drain_requested());
  reset_drain();
  EXPECT_FALSE(drain_requested());
}

TEST(WatchdogTest, SlowPointIsFlaggedFastPointCompletes) {
  FailPolicy policy;
  policy.soft_deadline_s = 0.01;
  std::vector<GridPoint> pts;
  pts.push_back({1, [] {
                   std::this_thread::sleep_for(std::chrono::milliseconds(60));
                   return sample_record(0);
                 }});
  pts.push_back({2, [] { return sample_record(1); }});
  const auto out = run_grid(pts, nullptr, policy, 2);
  EXPECT_EQ(out.deadline_flagged[0], 1);  // flagged, but never cancelled
  EXPECT_EQ(out.status[0], PointStatus::Evaluated);
  expect_record_identical(sample_record(0), out.records[0]);
  EXPECT_GE(out.health.deadline_flags, 1u);
}

TEST(HealthReportTest, SummaryAndJsonCarryAllCounters) {
  HealthReport h;
  h.points = 9;
  h.cache_hits = 4;
  h.evaluated = 3;
  h.failures = 1;
  h.skipped = 1;
  h.journal_replayed = 4;
  const std::string s = h.summary();
  EXPECT_NE(s.find("points=9"), std::string::npos);
  EXPECT_NE(s.find("failures=1"), std::string::npos);
  EXPECT_NE(s.find("journal_replayed=4"), std::string::npos);
  const std::string j = h.to_json().dump();
  EXPECT_NE(j.find("\"failures\""), std::string::npos);
  EXPECT_NE(j.find("\"journal_replayed\""), std::string::npos);
}

// ------------------------------------------------------------ runtime layer

TEST(ParallelCapture, ExceptionSlotsMatchThrowingTasks) {
  const std::size_t n = 64;
  const auto errors = runtime::parallel_tasks_capture(
      n,
      [](std::size_t i) {
        if (i % 2 == 1) throw std::runtime_error("odd " + std::to_string(i));
      },
      4);
  ASSERT_EQ(errors.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 1) {
      ASSERT_TRUE(errors[i] != nullptr) << i;
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "odd " + std::to_string(i));
      }
    } else {
      EXPECT_TRUE(errors[i] == nullptr) << i;
    }
  }
}

TEST(ParallelCapture, SiblingsRunToCompletionDespiteFailure) {
  std::atomic<int> completed{0};
  const auto errors = runtime::parallel_tasks_capture(
      16,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("first");
        completed.fetch_add(1);
      },
      4);
  EXPECT_EQ(completed.load(), 15);
  EXPECT_EQ(std::count(errors.begin(), errors.end(), nullptr), 15);
}

}  // namespace
}  // namespace ihw::sweep
