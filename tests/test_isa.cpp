// Tests for the PTX-like SIMT ISA interpreter: program validation, lockstep
// warp execution, structured divergence, loops, memory, counter integration,
// and imprecise execution through the IHW dispatch.
#include "gpu/isa.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "gpu/context.h"
#include "gpu/simreal.h"

namespace ihw::gpu::isa {
namespace {

// r0 := global thread id.
void emit_gtid(Program& k, int r0 = 0) {
  k.s2r_tid(r0).s2r_ctaid(1).s2r_ntid(2).imad(r0, 1, 2, r0);
}

TEST(IsaProgram, ValidationCatchesStructuralErrors) {
  {
    Program k;
    k.if_(0);
    EXPECT_NE(k.validate(), "");
  }
  {
    Program k;
    k.endif();
    EXPECT_NE(k.validate(), "");
  }
  {
    Program k;
    k.while_(0).endif();
    EXPECT_NE(k.validate(), "");
  }
  {
    Program k;
    k.if_(0).else_().endif().exit();
    EXPECT_EQ(k.validate(), "");
  }
  {
    Program k;
    k.fadd(40, 0, 0);  // register out of range
    EXPECT_NE(k.validate(), "");
  }
  {
    Program k;
    k.exit();
    EXPECT_EQ(k.validate(), "");
  }
}

TEST(IsaProgram, LaunchRejectsInvalidKernels) {
  Program k;
  k.if_(0);
  MemorySpace mem;
  EXPECT_THROW(launch_kernel(k, mem, 1, 32), std::runtime_error);
}

TEST(IsaExec, SaxpyMatchesHost) {
  const std::size_t n = 1000;
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i) * 0.5f;
    y[i] = static_cast<float>(i) - 200.0f;
  }
  MemorySpace mem;
  const int bx = mem.bind(x), by = mem.bind(y), bout = mem.bind(n);

  Program k;
  emit_gtid(k);
  // Guard: if gtid >= n, exit.
  k.imovi(3, static_cast<std::int32_t>(n)).isetp_lt(0, 0, 3);
  k.if_(0);
  k.ld(0, bx, 0).ld(1, by, 0);
  k.fmovi(2, 2.5f).ffma(3, 2, 0, 1);  // f3 = 2.5*x + y
  k.st(bout, 0, 3);
  k.endif();
  k.exit();

  const auto stats = launch_kernel(k, mem, (n + 255) / 256, 256);
  EXPECT_GT(stats.warp_instructions, 0u);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    2.5f * x[i] + y[i]);
}

TEST(IsaExec, PartialWarpAndGuardMaskOutOfRangeThreads) {
  const std::size_t n = 37;  // not a multiple of the warp size
  MemorySpace mem;
  const int bout = mem.bind(n);
  Program k;
  emit_gtid(k);
  k.imovi(3, static_cast<std::int32_t>(n)).isetp_lt(0, 0, 3);
  k.if_(0);
  k.cvt_i2f(0, 0).st(bout, 0, 0);
  k.endif();
  k.exit();
  launch_kernel(k, mem, 2, 32);  // 64 threads, only 37 land
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    static_cast<float>(i));
}

TEST(IsaExec, IfElseDivergenceBothPathsExecute) {
  const std::size_t n = 64;
  MemorySpace mem;
  const int bout = mem.bind(n);
  Program k;
  emit_gtid(k);
  // p0 = (tid & 1) == 0, via tid - 2*(tid/2)... simpler: tid < 32.
  k.imovi(3, 32).isetp_lt(0, 0, 3);
  k.if_(0);
  k.fmovi(0, 1.0f);
  k.else_();
  k.fmovi(0, 2.0f);
  k.endif();
  k.st(bout, 0, 0).exit();
  const auto stats = launch_kernel(k, mem, 2, 32);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    i < 32 ? 1.0f : 2.0f);
  EXPECT_GE(stats.max_divergence_depth, 1u);
}

TEST(IsaExec, IntraWarpDivergenceMasksLanes) {
  // Threads within ONE warp take different paths: even lanes write 1, odd 2.
  MemorySpace mem;
  const int bout = mem.bind(32);
  Program k;
  k.s2r_tid(0);
  // r1 = tid & 1 via tid - 2*(tid>>1): compute with imul/isub.
  k.imovi(2, 2).imovi(3, 0);
  // r4 = tid / 2 using float trick: f = tid * 0.5, truncate.
  k.cvt_i2f(0, 0).fmovi(1, 0.5f).fmul(0, 0, 1).cvt_f2i(4, 0);
  k.imul(4, 4, 2).s2r_tid(5).isub(4, 5, 4);  // r4 = tid - 2*(tid/2)
  k.isetp_eq(0, 4, 3);                       // p0 = (tid odd-bit == 0)
  k.if_(0);
  k.fmovi(6, 1.0f);
  k.else_();
  k.fmovi(6, 2.0f);
  k.endif();
  k.st(bout, 5, 6).exit();
  launch_kernel(k, mem, 1, 32);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    (i % 2 == 0) ? 1.0f : 2.0f);
}

TEST(IsaExec, WhileLoopPerThreadTripCounts) {
  // Each thread loops tid times, incrementing a float accumulator.
  MemorySpace mem;
  const int bout = mem.bind(32);
  Program k;
  k.s2r_tid(0);
  k.imovi(1, 0);           // r1 = loop counter
  k.fmovi(0, 0.0f);        // f0 = accumulator
  k.fmovi(1, 1.0f);
  k.isetp_lt(0, 1, 0);     // p0 = counter < tid
  k.while_(0);
  k.fadd(0, 0, 1);         // acc += 1
  k.imovi(2, 1).iadd(1, 1, 2);
  k.isetp_lt(0, 1, 0);     // refresh predicate
  k.endwhile(0);
  k.st(bout, 0, 0).exit();
  const auto stats = launch_kernel(k, mem, 1, 32);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    static_cast<float>(i));
  // Warp runs as long as the slowest lane (31 iterations).
  EXPECT_GT(stats.warp_instructions, 31u * 4);
}

TEST(IsaExec, NestedDivergence) {
  MemorySpace mem;
  const int bout = mem.bind(32);
  Program k;
  k.s2r_tid(0).cvt_i2f(0, 0);
  k.fmovi(1, 16.0f).setp_lt(0, 0, 1);  // p0: tid < 16
  k.fmovi(2, 8.0f).setp_lt(1, 0, 2);   // p1: tid < 8
  k.if_(0);
  /**/ k.if_(1);
  /**/ k.fmovi(3, 1.0f);
  /**/ k.else_();
  /**/ k.fmovi(3, 2.0f);
  /**/ k.endif();
  k.else_();
  k.fmovi(3, 3.0f);
  k.endif();
  k.s2r_tid(1).st(bout, 1, 3).exit();
  const auto stats = launch_kernel(k, mem, 1, 32);
  EXPECT_EQ(stats.max_divergence_depth, 2u);
  for (std::size_t i = 0; i < 32; ++i) {
    const float expect = i < 8 ? 1.0f : (i < 16 ? 2.0f : 3.0f);
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i], expect);
  }
}

TEST(IsaExec, EarlyExitRetiresLanesButOthersContinue) {
  MemorySpace mem;
  const int bout = mem.bind(std::vector<float>(32, -1.0f));
  Program k;
  k.s2r_tid(0).cvt_i2f(0, 0);
  k.fmovi(1, 16.0f).setp_lt(0, 0, 1);
  k.if_(0);
  k.exit();  // lanes 0..15 retire inside the IF
  k.endif();
  k.fmovi(2, 9.0f).s2r_tid(1).st(bout, 1, 2);
  k.exit();
  launch_kernel(k, mem, 1, 32);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_FLOAT_EQ(mem.buffers[static_cast<std::size_t>(bout)][i],
                    i < 16 ? -1.0f : 9.0f);
}

TEST(IsaExec, SfuOpsAndSelp) {
  MemorySpace mem;
  const int bout = mem.bind(8);
  Program k;
  k.s2r_tid(0).cvt_i2f(0, 0);
  k.fmovi(1, 1.0f).fadd(0, 0, 1);  // f0 = tid + 1
  k.rsqrt(2, 0);                   // 1/sqrt(tid+1)
  k.sqrt(3, 0);
  k.fmul(4, 2, 3);                 // ~1
  k.fmovi(5, 0.5f).setp_gt(0, 4, 5);
  k.selp(6, 4, 5, 0);
  k.s2r_tid(1).st(bout, 1, 6).exit();
  launch_kernel(k, mem, 1, 8);
  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_NEAR(mem.buffers[static_cast<std::size_t>(bout)][i], 1.0f, 1e-5);
}

TEST(IsaExec, CountersMatchInstructionMix) {
  FpContext ctx{IhwConfig::precise()};
  ScopedContext scope(ctx);
  MemorySpace mem;
  const int b = mem.bind(64);
  Program k;
  emit_gtid(k);
  k.cvt_i2f(0, 0);
  k.fmul(1, 0, 0).fadd(1, 1, 0).rcp(2, 1).st(b, 0, 2).exit();
  launch_kernel(k, mem, 2, 32);
  EXPECT_EQ(ctx.counters()[OpClass::FMul], 64u);
  EXPECT_EQ(ctx.counters()[OpClass::FAdd], 64u);
  EXPECT_EQ(ctx.counters()[OpClass::FRcp], 64u);
  EXPECT_EQ(ctx.counters()[OpClass::Store], 64u);
  EXPECT_EQ(ctx.counters()[OpClass::IMul], 64u);  // the IMAD of emit_gtid
}

TEST(IsaExec, ImpreciseConfigChangesResults) {
  MemorySpace mem_p, mem_i;
  const int bp = mem_p.bind(32), bi = mem_i.bind(32);
  auto make = [](int buf) {
    Program k;
    k.s2r_tid(0).cvt_i2f(0, 0);
    k.fmovi(1, 1.9f).fadd(0, 0, 1);  // f0 = tid + 1.9
    k.fmul(2, 0, 0);                 // f0^2
    k.st(buf, 0, 2).exit();
    return k;
  };
  {
    FpContext ctx{IhwConfig::precise()};
    ScopedContext scope(ctx);
    auto k = make(bp);
    launch_kernel(k, mem_p, 1, 32);
  }
  {
    FpContext ctx{IhwConfig::mul_only(MulMode::ImpreciseSimple, 0)};
    ScopedContext scope(ctx);
    auto k = make(bi);
    launch_kernel(k, mem_i, 1, 32);
  }
  // Imprecise multiplication underestimates; results must differ and match
  // the ifp_mul model exactly.
  for (std::size_t i = 0; i < 32; ++i) {
    const float x = static_cast<float>(i) + 1.9f;
    ASSERT_FLOAT_EQ(mem_p.buffers[static_cast<std::size_t>(bp)][i], x * x);
    ASSERT_FLOAT_EQ(mem_i.buffers[static_cast<std::size_t>(bi)][i],
                    ihw::ifp_mul(x, x));
  }
}

TEST(IsaExec, OutOfRangeMemoryThrows) {
  MemorySpace mem;
  const int b = mem.bind(4);
  Program k;
  k.imovi(0, 100).fmovi(0, 1.0f).st(b, 0, 0).exit();
  EXPECT_THROW(launch_kernel(k, mem, 1, 1), std::runtime_error);
}

TEST(IsaExec, Ex2Lg2RoundTrip) {
  MemorySpace mem;
  const int b = mem.bind(16);
  Program k;
  k.s2r_tid(0).cvt_i2f(0, 0);
  k.fmovi(1, 1.0f).fadd(0, 0, 1);  // tid+1
  k.lg2(2, 0).ex2(3, 2);           // 2^(log2 x) ~ x
  k.s2r_tid(1).st(b, 1, 3).exit();
  launch_kernel(k, mem, 1, 16);
  for (std::size_t i = 0; i < 16; ++i)
    ASSERT_NEAR(mem.buffers[static_cast<std::size_t>(b)][i],
                static_cast<float>(i + 1), 1e-3 * static_cast<float>(i + 1));
}

TEST(IsaExec, CoulombKernelMatchesSimFloatApp) {
  // End-to-end substrate check: the CP inner loop written as ISA assembly
  // must produce the same physics as a SimFloat loop, under precise AND
  // imprecise hardware (same op sequence -> bit-exact agreement).
  const std::size_t n_atoms = 24;
  const std::size_t n_points = 64;
  common::Xoshiro256 rng(97);
  std::vector<float> ax(n_atoms), ay(n_atoms), aq(n_atoms), px(n_points),
      py(n_points);
  for (std::size_t i = 0; i < n_atoms; ++i) {
    ax[i] = static_cast<float>(rng.uniform(0, 4));
    ay[i] = static_cast<float>(rng.uniform(0, 4));
    aq[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    px[i] = static_cast<float>(rng.uniform(0, 4));
    py[i] = static_cast<float>(rng.uniform(0, 4));
  }

  // ISA kernel: one thread per lattice point, WHILE loop over the atoms.
  Program k;
  k.s2r_tid(0).s2r_ctaid(4).s2r_ntid(5);
  k.imad(0, 4, 5, 0);                             // r0 = global point index
  k.ld(0, 3, 0).ld(1, 4, 0);                      // f0 = px, f1 = py
  k.fmovi(7, 0.0f);                               // f7 = acc
  k.imovi(1, 0);                                  // r1 = atom index
  k.imovi(2, static_cast<std::int32_t>(n_atoms));
  k.isetp_lt(0, 1, 2);
  k.while_(0);
  {
    k.ld(2, 0, 1).ld(3, 1, 1).ld(4, 2, 1);        // f2=ax f3=ay f4=q
    k.fsub(2, 0, 2).fsub(3, 1, 3);                // deltas
    k.fmul(5, 2, 2).ffma(5, 3, 3, 5);             // r2 = dx^2 + dy^2
    k.fmovi(6, 0.0625f).fadd(5, 5, 6);            // softening
    k.rsqrt(6, 5);
    k.ffma(7, 4, 6, 7);                           // acc += q * rsqrt(r2)
    k.imovi(3, 1).iadd(1, 1, 3);
    k.isetp_lt(0, 1, 2);
  }
  k.endwhile(0);
  k.st(5, 0, 7).exit();

  for (const auto& cfg : {ihw::IhwConfig::precise(),
                          ihw::IhwConfig::all_imprecise()}) {
    // ISA execution.
    MemorySpace mem;
    mem.bind(ax);
    mem.bind(ay);
    mem.bind(aq);
    mem.bind(px);
    mem.bind(py);
    mem.bind(n_points);  // buffer 5 = out
    {
      FpContext ctx(cfg);
      ScopedContext scope(ctx);
      launch_kernel(k, mem, 2, 32);
    }
    // SimFloat reference with the identical operation sequence.
    std::vector<float> expect(n_points);
    {
      FpContext ctx(cfg);
      ScopedContext scope(ctx);
      for (std::size_t i = 0; i < n_points; ++i) {
        SimFloat acc(0.0f);
        for (std::size_t a = 0; a < n_atoms; ++a) {
          const SimFloat dx = SimFloat(px[i]) - SimFloat(ax[a]);
          const SimFloat dy = SimFloat(py[i]) - SimFloat(ay[a]);
          SimFloat r2 = fma_op(dy, dy, dx * dx);
          r2 = r2 + SimFloat(0.0625f);
          acc = fma_op(SimFloat(aq[a]), rsqrt(r2), acc);
        }
        expect[i] = acc.value();
      }
    }
    for (std::size_t i = 0; i < n_points; ++i)
      ASSERT_EQ(mem.buffers[5][i], expect[i]) << cfg.describe() << " @" << i;
  }
}

}  // namespace
}  // namespace ihw::gpu::isa
