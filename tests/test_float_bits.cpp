// Unit tests for the IEEE-754 field-access layer every imprecise unit is
// built on.
#include "fpcore/float_bits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ihw::fp {
namespace {

template <typename T>
class FloatBitsTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(FloatBitsTest, FloatTypes);

TYPED_TEST(FloatBitsTest, DecomposeComposeRoundTripsRandomValues) {
  using T = TypeParam;
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) {
    const T v = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-60, 60))) *
        (rng.uniform() < 0.5 ? -1.0 : 1.0));
    const auto f = decompose(v);
    EXPECT_EQ(compose<T>(f.sign, f.biased_exp, f.frac), v);
  }
}

TYPED_TEST(FloatBitsTest, DecomposeClassifiesSpecials) {
  using T = TypeParam;
  EXPECT_TRUE(decompose(std::numeric_limits<T>::quiet_NaN()).is_nan());
  EXPECT_TRUE(decompose(std::numeric_limits<T>::infinity()).is_inf());
  EXPECT_TRUE(decompose(-std::numeric_limits<T>::infinity()).is_inf());
  EXPECT_TRUE(decompose(T(0)).is_zero());
  EXPECT_TRUE(decompose(-T(0)).is_zero());
  EXPECT_TRUE(decompose(std::numeric_limits<T>::denorm_min()).is_subnormal());
  EXPECT_TRUE(decompose(T(1)).is_finite_nonzero());
  EXPECT_FALSE(decompose(T(1)).is_subnormal());
}

TYPED_TEST(FloatBitsTest, SignificandHasHiddenBit) {
  using T = TypeParam;
  using Tr = FloatTraits<T>;
  const auto f = decompose(T(1));
  EXPECT_EQ(f.frac, typename Tr::Bits{0});
  EXPECT_EQ(f.significand(), Tr::hidden_bit);
  const auto g = decompose(T(1.5));
  EXPECT_EQ(g.significand(), Tr::hidden_bit | (Tr::hidden_bit >> 1));
}

TYPED_TEST(FloatBitsTest, UnbiasedExponentMatchesFrexpStyle) {
  using T = TypeParam;
  EXPECT_EQ(decompose(T(1)).unbiased_exp(), 0);
  EXPECT_EQ(decompose(T(2)).unbiased_exp(), 1);
  EXPECT_EQ(decompose(T(0.5)).unbiased_exp(), -1);
  EXPECT_EQ(decompose(T(1024)).unbiased_exp(), 10);
}

TYPED_TEST(FloatBitsTest, FlushSubnormalPreservesSignAndNormals) {
  using T = TypeParam;
  EXPECT_EQ(flush_subnormal(std::numeric_limits<T>::denorm_min()), T(0));
  EXPECT_TRUE(
      std::signbit(flush_subnormal(-std::numeric_limits<T>::denorm_min())));
  EXPECT_EQ(flush_subnormal(T(1.25)), T(1.25));
  EXPECT_EQ(flush_subnormal(std::numeric_limits<T>::min()),
            std::numeric_limits<T>::min());
}

TYPED_TEST(FloatBitsTest, ComposeFlushingSaturatesAndFlushes) {
  using T = TypeParam;
  using Tr = FloatTraits<T>;
  // Overflow -> infinity.
  const T inf = compose_flushing<T>(false, Tr::bias + 10, 0);
  (void)inf;
  const T big = compose_flushing<T>(false, static_cast<int>(Tr::exp_mask), 0);
  EXPECT_TRUE(std::isinf(big));
  // Underflow -> signed zero.
  const T tiny = compose_flushing<T>(true, -Tr::bias - 5, 0);
  EXPECT_EQ(tiny, T(0));
  EXPECT_TRUE(std::signbit(tiny));
  // Normal range round-trips.
  EXPECT_EQ(compose_flushing<T>(false, 3, 0), T(8));
}

TEST(UlpDistance, AdjacentAndIdenticalValues) {
  EXPECT_EQ(ulp_distance(1.0f, 1.0f), 0u);
  EXPECT_EQ(ulp_distance(1.0f, std::nextafterf(1.0f, 2.0f)), 1u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(-1.0f, std::nextafterf(-1.0f, -2.0f)), 1u);
}

TEST(UlpDistance, CrossesZeroAndHandlesNan) {
  // +0 and -0 are adjacent in the ordered-integer mapping.
  EXPECT_LE(ulp_distance(0.0f, -0.0f), 1u);
  EXPECT_EQ(ulp_distance(std::nanf(""), 1.0f), ~0ull);
}

TEST(RelativeError, Definition) {
  EXPECT_NEAR(relative_error(2.0, 2.2), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(0.0, 1.0)));
  EXPECT_DOUBLE_EQ(relative_error(-4.0, -3.0), 0.25);
}

}  // namespace
}  // namespace ihw::fp
