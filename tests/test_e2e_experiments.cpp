// End-to-end regression guards for the reproduction itself: the headline
// paper-vs-measured claims recorded in EXPERIMENTS.md must keep holding as
// the code evolves. These run the real pipelines at reduced sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/hotspot.h"
#include "apps/ray.h"
#include "apps/runner.h"
#include "apps/sphinx.h"
#include "apps/srad.h"
#include "error/characterize.h"
#include "power/nfm.h"
#include "quality/grid_metrics.h"
#include "quality/ssim.h"

namespace ihw {
namespace {

using namespace ihw::apps;

TEST(E2E, HotspotSystemSavingsNearPaperPoint) {
  // Paper: 32.06% system / 91.54% arithmetic with ~35% FPU+SFU share.
  HotspotParams p;
  p.rows = p.cols = 128;
  p.iterations = 20;
  const auto in = make_hotspot_input(p, 7);
  const auto counters = run_with_config(
      IhwConfig::precise(), [&] { run_hotspot<gpu::SimFloat>(p, in); });
  gpu::GpuPowerParams params;
  params.dram_fraction = 0.15;
  const auto rep = analyze_gpu_run(counters, IhwConfig::all_imprecise(), params);
  EXPECT_GT(rep.breakdown.arith_share(), 0.27);
  EXPECT_LT(rep.breakdown.arith_share(), 0.40);
  EXPECT_GT(rep.savings.system_power_impr, 0.24);
  EXPECT_LT(rep.savings.system_power_impr, 0.36);
  EXPECT_GT(rep.savings.arith_power_impr, 0.75);
  EXPECT_LT(rep.breakdown.alu_share(), 0.10);
}

TEST(E2E, SavingsOrderingHotspotOverSradOverRay) {
  // Table 5's ordering: Hotspot > SRAD > RAY(conservative).
  double sys[3];
  {
    HotspotParams p;
    p.rows = p.cols = 96;
    p.iterations = 10;
    const auto in = make_hotspot_input(p, 7);
    const auto c = run_with_config(IhwConfig::precise(),
                                   [&] { run_hotspot<gpu::SimFloat>(p, in); });
    gpu::GpuPowerParams params;
    params.dram_fraction = 0.15;
    sys[0] = analyze_gpu_run(c, IhwConfig::all_imprecise(), params)
                 .savings.system_power_impr;
  }
  {
    SradParams p;
    p.rows = p.cols = 96;
    p.iterations = 15;
    p.roi_r1 = p.roi_c1 = 20;
    const auto in = make_srad_input(p, 11);
    const auto c = run_with_config(IhwConfig::precise(),
                                   [&] { run_srad<gpu::SimFloat>(p, in.image); });
    gpu::GpuPowerParams params;
    params.dram_fraction = 0.30;
    sys[1] = analyze_gpu_run(c, IhwConfig::all_imprecise(), params)
                 .savings.system_power_impr;
  }
  {
    RayParams p;
    p.width = p.height = 96;
    const auto c = run_with_config(IhwConfig::precise(),
                                   [&] { render_ray<gpu::SimFloat>(p); });
    gpu::GpuPowerParams params;
    params.dram_fraction = 0.25;
    params.frontend_pj = 14.0;
    sys[2] = analyze_gpu_run(c, IhwConfig::ray_conservative(), params)
                 .savings.system_power_impr;
  }
  EXPECT_GT(sys[0], sys[1]);
  EXPECT_GT(sys[1], sys[2]);
  EXPECT_GT(sys[2], 0.05);  // RAY conservative ~10% in the paper
  EXPECT_LT(sys[2], 0.15);
}

TEST(E2E, Figure14AnchorsHold) {
  const power::SynthesisDb db;
  // Log path tr19: >25X at ~18% error.
  const double red = db.multiplier(MulMode::Precise, 0, false).power_mw /
                     db.multiplier(MulMode::MitchellLog, 19, false).power_mw;
  EXPECT_GT(red, 25.0);
  const auto err = error::characterize32(error::UnitKind::AcfpLog, 19, 200000);
  EXPECT_NEAR(err.stats.max_rel(), 0.18, 0.015);
  // Intuitive truncation at a similar error: only ~2.3X.
  const double red_bt = db.multiplier(MulMode::Precise, 0, false).power_mw /
                        db.multiplier(MulMode::BitTruncated, 21, false).power_mw;
  EXPECT_LT(red_bt, 2.5);
  // 64-bit flagship: 49X at tr48.
  const double red64 = db.multiplier(MulMode::Precise, 0, true).power_mw /
                       db.multiplier(MulMode::MitchellLog, 48, true).power_mw;
  EXPECT_NEAR(red64, 49.0, 1.5);
}

TEST(E2E, HotspotQualityNegligibleAtSteadyState) {
  // The Fig. 15 claim: all IHW units on, MAE in the paper's 0.0x K league.
  HotspotParams p;
  p.rows = p.cols = 192;
  p.iterations = 30;
  const auto in = make_hotspot_input(p, 7);
  const auto ref = run_hotspot<float>(p, in);
  gpu::FpContext ctx(IhwConfig::all_imprecise());
  gpu::ScopedContext scope(ctx);
  const auto imp = run_hotspot<gpu::SimFloat>(p, in);
  EXPECT_LT(quality::mae(ref, imp), 0.1);
}

TEST(E2E, RayOrderingAndMultiplierRecovery) {
  // Figs. 17-18: conservative > full-path > simple; full path recovers what
  // the 25%-error multiplier destroys.
  RayParams p;
  p.width = p.height = 128;
  const auto ref = render_ray<float>(p);
  auto ssim_for = [&](IhwConfig cfg) {
    gpu::FpContext ctx(cfg);
    gpu::ScopedContext scope(ctx);
    return quality::ssim_rgb(ref, render_ray<gpu::SimFloat>(p));
  };
  const double cons = ssim_for(IhwConfig::ray_conservative());
  auto simple = IhwConfig::ray_conservative();
  simple.mul_mode = MulMode::ImpreciseSimple;
  const double s_simple = ssim_for(simple);
  const double s_full = ssim_for(IhwConfig::ray_with_full_path_mul(0));
  EXPECT_GT(cons, s_full);
  EXPECT_GT(s_full, s_simple);
}

TEST(E2E, SphinxTableSevenHeadline) {
  // Full path reaches >20X power reduction at precise-level accuracy, where
  // the intuitive baseline needs to stay below ~2.3X.
  SphinxParams p;
  const auto corpus = make_sphinx_corpus(p, 42);
  const power::SynthesisDb db;
  gpu::FpContext ctx(IhwConfig::mul_only(MulMode::MitchellFull, 44));
  gpu::ScopedContext scope(ctx);
  const auto r = run_sphinx<gpu::SimDouble>(p, corpus);
  EXPECT_GE(r.correct, 24);
  const double red = db.multiplier(MulMode::Precise, 0, true).power_mw /
                     db.multiplier(MulMode::MitchellFull, 44, true).power_mw;
  EXPECT_GT(red, 20.0);
}

TEST(E2E, SystemSavingsBoundedByArithShareAlways) {
  // Framework invariant across every app config: Fig. 12 savings can never
  // exceed the arithmetic power share (the paper's "upper bound" argument).
  HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 5;
  const auto in = make_hotspot_input(p, 7);
  const auto counters = run_with_config(
      IhwConfig::precise(), [&] { run_hotspot<gpu::SimFloat>(p, in); });
  for (const auto& cfg :
       {IhwConfig::all_imprecise(), IhwConfig::ray_conservative(),
        IhwConfig::mul_only(MulMode::MitchellLog, 19),
        IhwConfig::mul_only(MulMode::BitTruncated, 21)}) {
    const auto rep = analyze_gpu_run(counters, cfg);
    EXPECT_LE(rep.savings.system_power_impr,
              rep.breakdown.arith_share() + 1e-9)
        << cfg.describe();
    EXPECT_GE(rep.savings.system_power_impr, -0.05) << cfg.describe();
  }
}

}  // namespace
}  // namespace ihw
