// Tests for the fault-injection layer and the online numeric guard:
// deterministic counter-based injector, fault models, GuardedDispatch
// screening, the two-level circuit breaker (epoch-local + run-level), the
// block-granular retry mode, and the end-to-end acceptance property -- under
// a hostile fault rate on one unit class, the guard degrades exactly that
// class and keeps application quality bounded while an unguarded run
// collapses.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "apps/hotspot.h"
#include "apps/runner.h"
#include "fault/guarded_dispatch.h"
#include "fault/injector.h"
#include "fpcore/float_bits.h"
#include "gpu/context.h"
#include "gpu/simreal.h"
#include "quality/grid_metrics.h"
#include "quality/tuner.h"

namespace ihw::fault {
namespace {

using apps::run_guarded_parallel;
using apps::run_with_config_parallel;
using gpu::SimFloat;

// --- injector ---------------------------------------------------------------

TEST(Injector, HashIsPureAndCoordinateSensitive) {
  const std::uint64_t h = fault_hash(42, UnitClass::Mul, 7, 13);
  EXPECT_EQ(h, fault_hash(42, UnitClass::Mul, 7, 13));  // pure function
  EXPECT_NE(h, fault_hash(43, UnitClass::Mul, 7, 13));  // seed matters
  EXPECT_NE(h, fault_hash(42, UnitClass::Add, 7, 13));  // class matters
  EXPECT_NE(h, fault_hash(42, UnitClass::Mul, 8, 13));  // epoch matters
  EXPECT_NE(h, fault_hash(42, UnitClass::Mul, 7, 14));  // op index matters
}

TEST(Injector, FireRateMatchesConfiguredProbability) {
  for (double rate : {0.01, 0.1, 0.5}) {
    int fires = 0;
    const int n = 200000;
    for (int op = 0; op < n; ++op)
      if (fault_fires(fault_hash(99, UnitClass::Mul, 0, op), rate)) ++fires;
    const double measured = static_cast<double>(fires) / n;
    EXPECT_NEAR(measured, rate, rate * 0.05) << "rate=" << rate;
  }
  // Boundary rates never / always fire.
  EXPECT_FALSE(fault_fires(fault_hash(1, UnitClass::Add, 0, 0), 0.0));
  EXPECT_TRUE(fault_fires(fault_hash(1, UnitClass::Add, 0, 0), 1.0));
}

TEST(Injector, EpochsProduceIndependentStreams) {
  // The same op index in different epochs must not fire in lockstep.
  int both = 0, either = 0;
  for (int op = 0; op < 100000; ++op) {
    const bool a = fault_fires(fault_hash(7, UnitClass::Add, 1, op), 0.1);
    const bool b = fault_fires(fault_hash(7, UnitClass::Add, 2, op), 0.1);
    both += (a && b);
    either += (a || b);
  }
  // Independent 10% streams: P(both) ~ 1%, far from P(a) ~ 10%.
  EXPECT_GT(either, 15000);
  EXPECT_LT(both, 2000);
}

TEST(Injector, ApplyFaultModelsCorruptTheSelectedBit) {
  FaultSpec spec;
  spec.bit_lo = spec.bit_hi = 23;  // exponent LSB of a float
  const float v = 1.5f;            // bits 0x3FC00000, bit 23 is set
  spec.model = FaultModel::BitFlip;
  EXPECT_EQ(fp::to_bits(apply_fault(v, spec, 0)),
            fp::to_bits(v) ^ (1u << 23));
  spec.model = FaultModel::StuckAt0;
  EXPECT_EQ(fp::to_bits(apply_fault(v, spec, 0)),
            fp::to_bits(v) & ~(1u << 23));
  spec.model = FaultModel::StuckAt1;
  EXPECT_EQ(fp::to_bits(apply_fault(v, spec, 0)), fp::to_bits(v));  // already 1
  // Bit selection is driven by the hash within [lo, hi], clamped to width.
  spec.model = FaultModel::BitFlip;
  spec.bit_lo = 0;
  spec.bit_hi = 1000;  // clamps to 31
  for (std::uint64_t h : {0ull, 17ull, 31ull, 1234567ull}) {
    const auto delta = fp::to_bits(apply_fault(v, spec, h)) ^ fp::to_bits(v);
    EXPECT_NE(delta, 0u);
    EXPECT_EQ(delta & (delta - 1), 0u) << "exactly one bit flips";
  }
}

// --- GuardedDispatch screening ----------------------------------------------

// High exponent bits [26, 30] by default: every corruption scales the result
// by >= 2^8 (or lands on inf/NaN), far outside any guard tolerance -- the
// tests can then assert trips == injections exactly. (A bit-23 flip only
// halves/doubles, which straddles the 50% tolerance.)
IhwConfig faulted_config(UnitClass cls, double rate,
                         int bit_lo = 26, int bit_hi = 30) {
  IhwConfig cfg = IhwConfig::all_imprecise();
  auto& fs = cfg.faults[cls];
  fs.rate = rate;
  fs.bit_lo = bit_lo;
  fs.bit_hi = bit_hi;
  return cfg;
}

TEST(GuardedDispatch, InertConfigMatchesBaseDispatcherBitExactly) {
  // No faults, no guard: results must be the plain imprecise datapath.
  const IhwConfig cfg = IhwConfig::all_imprecise();
  GuardedDispatch gd(cfg);
  const FpDispatch base(cfg);
  for (int i = 0; i < 2000; ++i) {
    const float a = 1.0f + 0.001f * static_cast<float>(i);
    const float b = 2.0f - 0.0007f * static_cast<float>(i);
    ASSERT_EQ(fp::to_bits(gd.mul(a, b)), fp::to_bits(base.mul(a, b)));
    ASSERT_EQ(fp::to_bits(gd.add(a, b)), fp::to_bits(base.add(a, b)));
    ASSERT_EQ(fp::to_bits(gd.div(a, b)), fp::to_bits(base.div(a, b)));
    ASSERT_EQ(fp::to_bits(gd.rsqrt(a)), fp::to_bits(base.rsqrt(a)));
  }
  EXPECT_FALSE(gd.counters().any());
}

TEST(GuardedDispatch, GuardAloneAcceptsLegitimateImprecision) {
  // The units' intrinsic approximation error (emax 25%) sits inside the
  // default tolerance (50%): the guard must not reject clean imprecise math.
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.guard.enabled = true;
  GuardedDispatch gd(cfg);
  const FpDispatch base(cfg);
  gd.begin_epoch(0);
  for (int i = 0; i < 2000; ++i) {
    const float a = 1.0f + 0.001f * static_cast<float>(i);
    const float b = 1.0f + 0.0009f * static_cast<float>(i);
    ASSERT_EQ(fp::to_bits(gd.mul(a, b)), fp::to_bits(base.mul(a, b)));
    ASSERT_EQ(fp::to_bits(gd.add(a, b)), fp::to_bits(base.add(a, b)));
  }
  EXPECT_EQ(gd.counters().total_trips(), 0u);
}

TEST(GuardedDispatch, InjectsAtConfiguredRateAndGuardRecovers) {
  // Exponent-range faults at 20% on Mul; guard recovers every corruption.
  IhwConfig cfg = faulted_config(UnitClass::Mul, 0.2);
  cfg.guard.enabled = true;
  cfg.guard.epoch_trip_limit = 1 << 30;       // keep breakers out of the way
  cfg.guard.run_trip_limit = std::uint64_t(-1);
  GuardedDispatch gd(cfg);
  const FpDispatch base(cfg);
  gd.begin_epoch(0);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const float a = 1.0f + 0.0001f * static_cast<float>(i);
    // Recovery replaces a violating result with the *precise* product.
    const float r = gd.mul(a, 3.0f);
    const float imp = base.mul(a, 3.0f);
    ASSERT_TRUE(r == imp || r == a * 3.0f) << "i=" << i;
    ASSERT_TRUE(std::isfinite(r));
  }
  const auto& c = gd.counters();
  const auto mul = static_cast<int>(UnitClass::Mul);
  EXPECT_NEAR(static_cast<double>(c.injected[mul]) / n, 0.2, 0.02);
  // Every exponent-bit corruption deviates far beyond 50%: all are caught.
  EXPECT_EQ(c.guard_trips[mul], c.injected[mul]);
  // No other class fired or tripped.
  EXPECT_EQ(c.total_injected(), c.injected[mul]);
  EXPECT_EQ(c.total_trips(), c.guard_trips[mul]);
}

TEST(GuardedDispatch, UnguardedFaultsPassThroughCorrupted) {
  IhwConfig cfg = faulted_config(UnitClass::Mul, 1.0, 30, 30);
  GuardedDispatch gd(cfg);  // guard disabled
  gd.begin_epoch(0);
  // Flipping the exponent MSB of 3.75 (biased exp 128) crushes it to ~1e-38.
  const float r = gd.mul(1.5f, 2.5f);
  EXPECT_LT(std::fabs(r), 1e-30f);
  EXPECT_GT(gd.counters().total_injected(), 0u);
  EXPECT_EQ(gd.counters().total_trips(), 0u);
}

TEST(GuardedDispatch, PreciseClassesNeverFault) {
  // Faults model voltage-overscaled *imprecise* units; a class on its
  // precise path sits at nominal voltage and must be untouched.
  IhwConfig cfg = faulted_config(UnitClass::Mul, 1.0);
  cfg.mul_mode = MulMode::Precise;
  cfg.guard.enabled = true;
  GuardedDispatch gd(cfg);
  gd.begin_epoch(0);
  for (int i = 0; i < 100; ++i) {
    const float a = 1.0f + 0.01f * static_cast<float>(i);
    ASSERT_EQ(gd.mul(a, 2.0f), a * 2.0f);
  }
  EXPECT_EQ(gd.counters().total_injected(), 0u);
}

// --- circuit breaker --------------------------------------------------------

TEST(Breaker, EpochLimitDegradesClassForRestOfEpoch) {
  IhwConfig cfg = faulted_config(UnitClass::Mul, 1.0, 28, 30);
  cfg.guard.enabled = true;
  cfg.guard.epoch_trip_limit = 3;
  cfg.guard.run_trip_limit = std::uint64_t(-1);
  GuardedDispatch gd(cfg);
  gd.begin_epoch(0);
  for (int i = 0; i < 50; ++i) gd.mul(1.5f, 2.5f);
  const auto mul = static_cast<int>(UnitClass::Mul);
  // Exactly epoch_trip_limit violations, then the class went precise (and a
  // precise class neither faults nor trips).
  EXPECT_EQ(gd.counters().guard_trips[mul], 3u);
  EXPECT_EQ(gd.counters().injected[mul], 3u);
  EXPECT_EQ(gd.counters().degraded_epochs[mul], 1u);
  // Inside the degraded epoch, results are exactly precise.
  EXPECT_EQ(gd.mul(1.5f, 2.5f), 3.75f);
  // A new epoch re-arms the class.
  gd.begin_epoch(1);
  for (int i = 0; i < 50; ++i) gd.mul(1.5f, 2.5f);
  EXPECT_EQ(gd.counters().guard_trips[mul], 6u);
  EXPECT_EQ(gd.counters().degraded_epochs[mul], 2u);
  // Other classes were never degraded.
  for (int c = 0; c < kNumUnitClasses; ++c) {
    if (c != mul) {
      ASSERT_EQ(gd.counters().degraded_epochs[c], 0u);
    }
  }
}

TEST(Breaker, RunLimitOpensAtLaunchBoundaryAndIsIdempotent) {
  IhwConfig cfg = faulted_config(UnitClass::Mul, 1.0, 28, 30);
  cfg.guard.enabled = true;
  cfg.guard.epoch_trip_limit = 1 << 30;  // isolate the run-level breaker
  cfg.guard.run_trip_limit = 5;
  GuardedDispatch gd(cfg);
  gd.begin_epoch(0);
  for (int i = 0; i < 4; ++i) gd.mul(1.5f, 2.5f);
  gd.end_launch();  // 4 trips < 5: breaker stays closed
  EXPECT_FALSE(gd.run_degraded(UnitClass::Mul));

  gd.begin_epoch(1);
  for (int i = 0; i < 3; ++i) gd.mul(1.5f, 2.5f);  // total 7 >= 5
  // Mid-launch the class is still armed; the breaker only opens at the
  // launch boundary (that is what keeps it schedule-invariant).
  EXPECT_FALSE(gd.run_degraded(UnitClass::Mul));
  gd.end_launch();
  EXPECT_TRUE(gd.run_degraded(UnitClass::Mul));
  const auto mul = static_cast<int>(UnitClass::Mul);
  EXPECT_EQ(gd.counters().run_degradations[mul], 1u);
  gd.end_launch();  // idempotent
  gd.end_launch();
  EXPECT_EQ(gd.counters().run_degradations[mul], 1u);
  // Open breaker: the class is precise from now on, even in new epochs.
  gd.begin_epoch(2);
  EXPECT_EQ(gd.mul(1.5f, 2.5f), 3.75f);
  EXPECT_EQ(gd.counters().guard_trips[mul], 7u);  // no further trips
}

TEST(Breaker, ShardCloneCarriesConfigAndOpenBreakersButNotCounters) {
  IhwConfig cfg = faulted_config(UnitClass::Mul, 1.0, 28, 30);
  cfg.guard.enabled = true;
  cfg.guard.epoch_trip_limit = 1 << 30;
  cfg.guard.run_trip_limit = 2;
  GuardedDispatch gd(cfg);
  gd.begin_epoch(0);
  for (int i = 0; i < 3; ++i) gd.mul(1.5f, 2.5f);
  gd.end_launch();
  ASSERT_TRUE(gd.run_degraded(UnitClass::Mul));

  GuardedDispatch shard = gd.shard_clone();
  EXPECT_TRUE(shard.run_degraded(UnitClass::Mul));  // breaker state carried
  EXPECT_FALSE(shard.counters().any());             // counters zeroed
  shard.begin_epoch(9);
  EXPECT_EQ(shard.mul(1.5f, 2.5f), 3.75f);  // degraded in the shard too

  const auto before = gd.counters().guard_trips[static_cast<int>(UnitClass::Mul)];
  gd.merge_counters(shard);
  EXPECT_EQ(gd.counters().guard_trips[static_cast<int>(UnitClass::Mul)], before);
}

TEST(Counters, MergeAndSummary) {
  FaultCounters a, b;
  a.injected[0] = 3;
  a.guard_trips[1] = 2;
  b.injected[0] = 4;
  b.retried_epochs = 5;
  a += b;
  EXPECT_EQ(a.injected[0], 7u);
  EXPECT_EQ(a.guard_trips[1], 2u);
  EXPECT_EQ(a.retried_epochs, 5u);
  EXPECT_EQ(a.total_injected(), 7u);
  EXPECT_EQ(a.total_trips(), 2u);
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(a.summary().empty());
  a.reset();
  EXPECT_FALSE(a.any());
  EXPECT_TRUE(a.summary().empty());
}

// --- end-to-end: graceful degradation on a real app -------------------------

struct HotspotRun {
  common::GridF out;
  FaultCounters faults;
};

HotspotRun run_hotspot_under(const IhwConfig& cfg, int threads) {
  apps::HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 4;
  p.steady_init = false;
  const auto input = make_hotspot_input(p, 7);
  HotspotRun r;
  const auto gr = run_guarded_parallel(cfg, threads, [&] {
    r.out = apps::run_hotspot<SimFloat>(p, input);
  });
  r.faults = gr.faults;
  return r;
}

// Acceptance: a hostile fault rate on the multiplier class alone. Unguarded,
// HotSpot's quality collapses; guarded, only the Mul breaker opens, the
// counters record it, and quality stays within a small factor of the
// fault-free imprecise baseline.
TEST(GracefulDegradation, GuardBoundsQualityWhereUnguardedCollapses) {
  const auto precise = run_hotspot_under(IhwConfig::precise(), 1);
  const auto clean = run_hotspot_under(IhwConfig::all_imprecise(), 1);
  const double base_mae = quality::mae(precise.out, clean.out);

  IhwConfig hostile = faulted_config(UnitClass::Mul, 5e-3);
  const auto unguarded = run_hotspot_under(hostile, 1);
  const double unguarded_mae = quality::mae(precise.out, unguarded.out);

  IhwConfig guarded_cfg = hostile;
  guarded_cfg.guard.enabled = true;
  guarded_cfg.guard.run_trip_limit = 16;  // open the Mul breaker quickly
  const auto guarded = run_hotspot_under(guarded_cfg, 1);
  const double guarded_mae = quality::mae(precise.out, guarded.out);

  // Unguarded: exponent-bit corruption destroys the temperature field
  // (possibly all the way to NaN, which is also a collapse).
  EXPECT_TRUE(std::isnan(unguarded_mae) ||
              unguarded_mae > 100.0 * std::max(base_mae, 1e-6))
      << "unguarded_mae=" << unguarded_mae << " base_mae=" << base_mae;
  // Guarded: bounded degradation, within 2x of the fault-free baseline
  // (recovery replaces corrupt products with precise ones).
  EXPECT_LT(guarded_mae, 2.0 * base_mae + 1e-6);

  // The observability trail: faults were injected, the guard caught them,
  // and only the Mul class ever degraded.
  const auto mul = static_cast<int>(UnitClass::Mul);
  EXPECT_GT(guarded.faults.injected[mul], 0u);
  EXPECT_GT(guarded.faults.guard_trips[mul], 0u);
  EXPECT_EQ(guarded.faults.run_degradations[mul], 1u);
  for (int c = 0; c < kNumUnitClasses; ++c) {
    if (c == mul) continue;
    ASSERT_EQ(guarded.faults.injected[c], 0u) << to_string(UnitClass(c));
    ASSERT_EQ(guarded.faults.guard_trips[c], 0u) << to_string(UnitClass(c));
    ASSERT_EQ(guarded.faults.run_degradations[c], 0u);
  }
  // The unguarded run still counts injections (observability without
  // screening overhead on the result path).
  EXPECT_GT(unguarded.faults.injected[mul], 0u);
  EXPECT_EQ(unguarded.faults.guard_trips[mul], 0u);
}

TEST(GracefulDegradation, FaultedRunsAreBitIdenticalAcrossThreads) {
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = FaultConfig::uniform(1e-3);
  cfg.guard.enabled = true;
  const auto ref = run_hotspot_under(cfg, 1);
  for (int threads : {2, 8}) {
    const auto out = run_hotspot_under(cfg, threads);
    ASSERT_EQ(ref.out.size(), out.out.size());
    for (std::size_t i = 0; i < ref.out.size(); ++i)
      ASSERT_EQ(fp::to_bits(ref.out.data()[i]), fp::to_bits(out.out.data()[i]))
          << "threads=" << threads << " i=" << i;
    EXPECT_EQ(ref.faults.injected, out.faults.injected) << "threads=" << threads;
    EXPECT_EQ(ref.faults.guard_trips, out.faults.guard_trips);
    EXPECT_EQ(ref.faults.degraded_epochs, out.faults.degraded_epochs);
    EXPECT_EQ(ref.faults.run_degradations, out.faults.run_degradations);
    EXPECT_EQ(ref.faults.retried_epochs, out.faults.retried_epochs);
  }
}

TEST(GracefulDegradation, RetryModeReExecutesTrippedBlocksDeterministically) {
  IhwConfig cfg = faulted_config(UnitClass::Mul, 5e-3);
  cfg.guard.enabled = true;
  cfg.guard.retry_epoch = true;
  cfg.guard.run_trip_limit = std::uint64_t(-1);  // keep blocks retrying
  const auto ref = run_hotspot_under(cfg, 1);
  EXPECT_GT(ref.faults.retried_epochs, 0u);
  for (int threads : {2, 8}) {
    const auto out = run_hotspot_under(cfg, threads);
    for (std::size_t i = 0; i < ref.out.size(); ++i)
      ASSERT_EQ(fp::to_bits(ref.out.data()[i]), fp::to_bits(out.out.data()[i]))
          << "threads=" << threads;
    EXPECT_EQ(ref.faults.retried_epochs, out.faults.retried_epochs);
  }
}

// The quality tuner under a FaultSpec: with a hostile unguarded fault rate on
// the multiplier, backing off Mul to its precise path (nominal voltage)
// removes the faults, so tuning converges exactly there.
TEST(TunerUnderFaults, BacksOffFaultedClassToMeetConstraint) {
  apps::HotspotParams p;
  p.rows = p.cols = 32;
  p.iterations = 2;
  p.steady_init = false;
  const auto input = make_hotspot_input(p, 7);

  common::GridF precise_out;
  run_with_config_parallel(IhwConfig::precise(), 1, [&] {
    precise_out = apps::run_hotspot<SimFloat>(p, input);
  });

  quality::QualityEval eval = [&](const IhwConfig& c) {
    common::GridF out;
    run_with_config_parallel(c, 1, [&] {
      out = apps::run_hotspot<SimFloat>(p, input);
    });
    return -quality::mae(precise_out, out);  // higher is better
  };

  FaultConfig faults;
  faults[UnitClass::Mul].rate = 5e-3;
  const auto res = quality::tune(eval, /*quality_constraint=*/-0.5,
                                 IhwConfig::all_imprecise(), faults,
                                 GuardPolicy{});  // guard off: tuner must act
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.config.mul_mode, MulMode::Precise);
  // The fault descriptor rides along through every evaluated step.
  EXPECT_DOUBLE_EQ(res.config.faults[UnitClass::Mul].rate, 5e-3);
}

}  // namespace
}  // namespace ihw::fault
