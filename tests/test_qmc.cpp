// Tests for the quasi-Monte-Carlo sequences used in error characterization.
#include "qmc/halton.h"
#include "qmc/sobol.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace ihw::qmc {
namespace {

TEST(Sobol, FirstDimensionIsVanDerCorput) {
  Sobol s(1);
  double p;
  const double expected[] = {0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125};
  for (double e : expected) {
    s.next(&p);
    EXPECT_DOUBLE_EQ(p, e);
  }
}

TEST(Sobol, PointsStayInUnitInterval) {
  Sobol s(4);
  double p[4];
  for (int i = 0; i < 100000; ++i) {
    s.next(p);
    for (int d = 0; d < 4; ++d) {
      ASSERT_GE(p[d], 0.0);
      ASSERT_LT(p[d], 1.0);
    }
  }
}

TEST(Sobol, DyadicStratification) {
  // The first 2^k Sobol' points hit every dyadic interval of width 2^-k
  // exactly once in each dimension -- the defining (0,2)-sequence property.
  for (int dims = 1; dims <= 4; ++dims) {
    Sobol s(dims);
    constexpr int k = 8;
    std::vector<std::vector<int>> hits(
        static_cast<std::size_t>(dims), std::vector<int>(1 << k, 0));
    double p[Sobol::kMaxDims];
    for (int i = 0; i < (1 << k); ++i) {
      s.next(p);
      for (int d = 0; d < dims; ++d)
        hits[static_cast<std::size_t>(d)]
            [static_cast<std::size_t>(p[d] * (1 << k))]++;
    }
    for (int d = 0; d < dims; ++d)
      for (int bin = 0; bin < (1 << k); ++bin)
        ASSERT_EQ(hits[static_cast<std::size_t>(d)]
                      [static_cast<std::size_t>(bin)], 1)
            << "dim " << d << " bin " << bin;
  }
}

TEST(Sobol, PairwiseTwoDimensionalUniformity) {
  // 2-D stratification: 2^12 points over a 64x64 grid -> exactly one point
  // per cell for a (0,2)-sequence in base 2.
  Sobol s(2);
  std::array<int, 64 * 64> cells{};
  double p[2];
  for (int i = 0; i < 4096; ++i) {
    s.next(p);
    cells[static_cast<std::size_t>(p[0] * 64) * 64 +
          static_cast<std::size_t>(p[1] * 64)]++;
  }
  for (int c : cells) ASSERT_EQ(c, 1);
}

// seek() must land on the exact state the step-by-step recurrence reaches --
// the parallel error sweeps rely on this to start chunks mid-stream.
TEST(Sobol, SeekMatchesSequentialAdvance) {
  const std::uint64_t offsets[] = {0, 1, 2, 1023, 65536, 65536 * 3 + 17};
  for (std::uint64_t off : offsets) {
    Sobol stepped(4), seeked(4);
    double ps[4], pq[4];
    for (std::uint64_t i = 0; i < off; ++i) stepped.next(ps);
    seeked.seek(off);
    for (int i = 0; i < 8; ++i) {
      stepped.next(ps);
      seeked.next(pq);
      for (int d = 0; d < 4; ++d)
        ASSERT_EQ(ps[d], pq[d]) << "offset " << off << " dim " << d;
    }
  }
}

TEST(Sobol, SkipAdvancesSequence) {
  Sobol a(2), b(2);
  double pa[2], pb[2];
  a.skip(100);
  for (int i = 0; i < 100; ++i) b.next(pb);
  a.next(pa);
  b.next(pb);
  EXPECT_DOUBLE_EQ(pa[0], pb[0]);
  EXPECT_DOUBLE_EQ(pa[1], pb[1]);
}

TEST(Sobol, RejectsBadDimensionCounts) {
  EXPECT_THROW(Sobol(0), std::invalid_argument);
  EXPECT_THROW(Sobol(9), std::invalid_argument);
  EXPECT_NO_THROW(Sobol(8));
}

TEST(Halton, RadicalInverseKnownValues) {
  EXPECT_DOUBLE_EQ(radical_inverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(radical_inverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(radical_inverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(radical_inverse(1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(radical_inverse(2, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(radical_inverse(3, 3), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(radical_inverse(0, 5), 0.0);
}

TEST(Halton, SequenceMatchesRadicalInverses) {
  Halton h(3);
  double p[3];
  for (std::uint64_t i = 1; i <= 100; ++i) {
    h.next(p);
    EXPECT_DOUBLE_EQ(p[0], radical_inverse(i, 2));
    EXPECT_DOUBLE_EQ(p[1], radical_inverse(i, 3));
    EXPECT_DOUBLE_EQ(p[2], radical_inverse(i, 5));
  }
}

TEST(Halton, ApproximatelyUniform) {
  Halton h(2);
  double p[2];
  int bins[16] = {0};
  const int n = 16000;
  for (int i = 0; i < n; ++i) {
    h.next(p);
    bins[static_cast<int>(p[0] * 16)]++;
  }
  for (int b : bins) EXPECT_NEAR(b, n / 16, n / 160);
}

TEST(QmcCrossCheck, SobolAndHaltonAgreeOnIntegrals) {
  // Both sequences should integrate x*y over [0,1)^2 to 0.25.
  Sobol s(2);
  Halton h(2);
  double ps[2], ph[2];
  double sum_s = 0.0, sum_h = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    s.next(ps);
    h.next(ph);
    sum_s += ps[0] * ps[1];
    sum_h += ph[0] * ph[1];
  }
  EXPECT_NEAR(sum_s / n, 0.25, 1e-3);
  EXPECT_NEAR(sum_h / n, 0.25, 1e-3);
}

}  // namespace
}  // namespace ihw::qmc
