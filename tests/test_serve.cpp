// Tests for the evaluation daemon (DESIGN.md §13): the JSON parser the wire
// protocol rides on, frame round-trips and malformed-frame handling, an
// in-process Server driven through real sockets (bit-exact characterization
// and workload answers vs. the in-process engine), single-flight coalescing
// (a duplicated in-flight fingerprint evaluates exactly once, proven by the
// cache store counter), admission-control shedding, and graceful shutdown.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/ray.h"
#include "apps/runner.h"
#include "gpu/simreal.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve/workloads.h"
#include "sweep/cache.h"
#include "sweep/sweep.h"

namespace ihw::serve {
namespace {

std::string test_socket(const char* name) {
  return std::string("/tmp/ihw_test_") + std::to_string(::getpid()) + "_" +
         name + ".sock";
}

// ------------------------------------------------------------------- JSON

TEST(JsonParse, RoundTripsDocumentBitExactly) {
  sweep::Json doc = sweep::Json::object()
                        .set("s", "a\"b\\c\n\t")
                        .set("i", std::int64_t(-42))
                        .set("u", std::uint64_t(18446744073709551615ull))
                        .set("d", 0.1)
                        .set("b", true)
                        .set("n", sweep::Json())
                        .set("arr", sweep::Json::array()
                                        .push(1)
                                        .push(2.5)
                                        .push("x"));
  sweep::Json back;
  std::string err;
  ASSERT_TRUE(sweep::Json::parse(doc.dump(), &back, &err)) << err;
  EXPECT_EQ(back.dump(), doc.dump());  // member order preserved
  EXPECT_EQ(back["s"].as_str(), "a\"b\\c\n\t");
  EXPECT_EQ(back["i"].as_i64(), -42);
  EXPECT_EQ(back["u"].as_u64(), 18446744073709551615ull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back["d"].as_double()),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_TRUE(back["b"].as_bool());
  EXPECT_TRUE(back["n"].is_null());
  EXPECT_EQ(back["arr"].size(), 3u);
  EXPECT_EQ(back["arr"].at(1).as_double(), 2.5);
}

TEST(JsonParse, UnicodeEscapesAndSurrogatePairs) {
  sweep::Json v;
  ASSERT_TRUE(sweep::Json::parse(R"("\u0041\u00e9\u20ac\ud83d\ude00")", &v));
  EXPECT_EQ(v.as_str(), "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",        "[1,2",      "{\"a\":}",  "{\"a\" 1}",
      "[1,]",      "truth",    "01",        "1.",        "\"\\x\"",
      "\"\n\"",    "{}extra",  "[\"\\ud800\"]",  // lone surrogate
  };
  for (const char* text : bad) {
    sweep::Json v;
    std::string err;
    EXPECT_FALSE(sweep::Json::parse(text, &v, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(JsonParse, DepthBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  sweep::Json v;
  EXPECT_FALSE(sweep::Json::parse(deep, &v));
}

// ------------------------------------------------------------------ wire

TEST(Wire, FrameRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload = "{\"op\":\"ping\"}";
  ASSERT_TRUE(write_frame(sv[0], payload));
  std::string got;
  EXPECT_EQ(read_frame(sv[1], &got), WireStatus::Ok);
  EXPECT_EQ(got, payload);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Wire, CleanCloseBetweenFramesIsClosed) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  std::string got;
  EXPECT_EQ(read_frame(sv[1], &got), WireStatus::Closed);
  ::close(sv[1]);
}

TEST(Wire, TornPrefixAndTruncatedPayloadAreMalformed) {
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const char two[] = {0, 0};
    ASSERT_EQ(::send(sv[0], two, 2, 0), 2);  // half a length prefix
    ::close(sv[0]);
    std::string got;
    EXPECT_EQ(read_frame(sv[1], &got), WireStatus::Malformed);
    ::close(sv[1]);
  }
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const unsigned char hdr[] = {0, 0, 0, 10};  // promises 10 bytes
    ASSERT_EQ(::send(sv[0], hdr, 4, 0), 4);
    ASSERT_EQ(::send(sv[0], "abc", 3, 0), 3);  // delivers 3
    ::close(sv[0]);
    std::string got;
    EXPECT_EQ(read_frame(sv[1], &got), WireStatus::Malformed);
    ::close(sv[1]);
  }
}

TEST(Wire, OversizedAndZeroLengthFramesAreMalformed) {
  for (std::uint32_t len : {0u, kMaxFrameBytes + 1}) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const unsigned char hdr[] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len)};
    ASSERT_EQ(::send(sv[0], hdr, 4, 0), 4);
    std::string got;
    EXPECT_EQ(read_frame(sv[1], &got), WireStatus::Malformed);
    ::close(sv[0]);
    ::close(sv[1]);
  }
  // write_frame refuses to produce such frames in the first place.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  EXPECT_FALSE(write_frame(sv[0], ""));
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------- server

struct ServerFixture {
  explicit ServerFixture(const char* name, int workers = 2,
                         int queue_limit = 64) {
    ServerOptions opts;
    opts.socket_path = test_socket(name);
    opts.workers = workers;
    opts.queue_limit = queue_limit;
    server = std::make_unique<Server>(opts);
    std::string err;
    if (!server->start(&err)) ADD_FAILURE() << err;
  }
  ~ServerFixture() { server->stop(); }
  Client connect() {
    Client c;
    std::string err;
    if (!c.connect(server->socket_path(), &err)) ADD_FAILURE() << err;
    return c;
  }
  std::unique_ptr<Server> server;
};

TEST(Serve, PingReportsProtocolVersion) {
  ServerFixture f("ping");
  Client c = f.connect();
  std::string proto;
  ASSERT_TRUE(c.ping(&proto));
  EXPECT_EQ(proto, kProtocolVersion);
}

TEST(Serve, GarbageJsonGetsBadRequestAndConnectionSurvives) {
  ServerFixture f("garbage");
  Client raw;
  std::string err;
  ASSERT_TRUE(raw.connect(f.server->socket_path(), &err)) << err;
  sweep::Json resp = raw.call(sweep::Json("this is not an object"));
  EXPECT_FALSE(resp["ok"].as_bool(true));
  EXPECT_EQ(resp["code"].as_str(), "bad_request");
  // Framing survived, so the same connection still serves valid requests.
  EXPECT_TRUE(raw.ping());
}

TEST(Serve, GarbageFrameFuzzNeverKillsTheServer) {
  ServerFixture f("fuzz");
  const std::string payloads[] = {
      std::string("\x00\x00\x00", 3),         // torn length prefix
      std::string("\xff\xff\xff\xff", 4),     // absurd length, then close
      std::string("\x00\x00\x00\x05" "abc", 7),  // truncated payload
      std::string("\x00\x00\x00\x02" "[]", 6),   // valid frame, non-object
  };
  // Raw-byte injection on fresh connections; the server must diagnose each
  // and keep serving.
  for (const auto& p : payloads) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  f.server->socket_path().c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof addr), 0);
    (void)::send(fd, p.data(), p.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
  // After all that abuse the server still answers.
  Client c = f.connect();
  EXPECT_TRUE(c.ping());
  const sweep::Json m = c.metrics();
  EXPECT_GE(m["server"]["protocol_errors"].as_u64(), 1u);
}

TEST(Serve, CharacterizationMatchesInProcessBitExactly) {
  ServerFixture f("charbits");
  Client c = f.connect();
  const std::vector<sweep::CharPoint> points = {
      {error::UnitKind::AcfpLog, 8, 5000},
      {error::UnitKind::BitTrunc, 4, 5000},
  };
  const auto remote = c.characterize(points, /*is64=*/false);
  const auto local = sweep::characterize_grid32(points, nullptr);
  ASSERT_EQ(remote.size(), local.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Serialize both through the cache codec: equal text == bit-equal
    // stats/PMF payloads (hex-float encoding, checksummed).
    sweep::EvalRecord lrec;
    lrec.has_char = true;
    lrec.chr = local[i];
    EXPECT_EQ(sweep::EvalCache::serialize(remote[i].fp, remote[i].rec),
              sweep::EvalCache::serialize(remote[i].fp, lrec));
    EXPECT_EQ(remote[i].fp, sweep::char_fingerprint(points[i], false));
  }
  // A second request is served warm from the daemon cache, bit-identically.
  const auto warm = c.characterize(points, false);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(warm[i].source, "cache");
    EXPECT_EQ(sweep::EvalCache::serialize(warm[i].fp, warm[i].rec),
              sweep::EvalCache::serialize(remote[i].fp, remote[i].rec));
  }
}

TEST(Serve, WorkloadEvalMatchesInProcessBitExactly) {
  ServerFixture f("workload");
  Client c = f.connect();
  sweep::Workload w{"ray", {{"width", 32.0}, {"height", 24.0}}, 0};
  const auto remote = c.eval_workload(w);
  EXPECT_EQ(remote.source, "evaluated");

  apps::RayParams rp;
  rp.width = 32;
  rp.height = 24;
  sweep::EvalRecord local;
  local.perf = apps::run_with_config(
      IhwConfig::precise(), [&] { apps::render_ray<gpu::SimFloat>(rp); });
  EXPECT_EQ(remote.fp, workload_fingerprint(w));
  EXPECT_EQ(sweep::EvalCache::serialize(remote.fp, remote.rec),
            sweep::EvalCache::serialize(remote.fp, local));
}

TEST(Serve, UnknownWorkloadAndMissingParamsAreBadRequests) {
  ServerFixture f("badwork");
  Client c = f.connect();
  try {
    c.eval_workload({"nope", {}, 0});
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_FALSE(e.retryable());
  }
  try {
    c.eval_workload({"ray", {{"width", 32.0}}, 0});  // height missing
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "bad_request");
  }
}

TEST(Serve, SingleFlightEvaluatesDuplicateFingerprintOnce) {
  // 4 clients fire the same fresh fingerprint concurrently; workers=4 so
  // the requests genuinely overlap in the executors. The evaluation is
  // slow enough (500k samples) to span the burst.
  ServerFixture f("flight", /*workers=*/4);
  const sweep::CharPoint fresh{error::UnitKind::BitTrunc, 7, 500'000};
  constexpr int kClients = 4;
  std::vector<std::string> sources(kClients);
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      Client c;
      if (!c.connect(f.server->socket_path())) return;
      const auto res = c.characterize({fresh}, false);
      sources[i] = res[0].source;
      payloads[i] = sweep::EvalCache::serialize(res[0].fp, res[0].rec);
    });
  for (auto& t : threads) t.join();

  // The store counter is the proof: one evaluation, one store.
  EXPECT_EQ(f.server->cache().stores(), 1u);
  int evaluated = 0, coalesced = 0, cache_hits = 0;
  for (const auto& s : sources) {
    if (s == "evaluated") ++evaluated;
    if (s == "coalesced") ++coalesced;
    if (s == "cache") ++cache_hits;
  }
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(evaluated + coalesced + cache_hits, kClients);
  // And every waiter saw the identical bytes.
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(payloads[i], payloads[0]);
  const sweep::Json m = f.connect().metrics();
  EXPECT_EQ(m["cache"]["stores"].as_u64(), 1u);
}

TEST(Serve, InRequestDuplicatesCollapseToOneEvaluation) {
  ServerFixture f("dups");
  Client c = f.connect();
  const sweep::CharPoint p{error::UnitKind::AcfpFull, 5, 4000};
  const auto res = c.characterize({p, p, p}, false);
  EXPECT_EQ(res[0].source, "evaluated");
  EXPECT_EQ(res[1].source, "cache");
  EXPECT_EQ(res[2].source, "cache");
  EXPECT_EQ(f.server->cache().stores(), 1u);
}

TEST(Serve, AdmissionControlShedsWithRetryableOverloaded) {
  // workers=1 and a queue of 2: one stall executes, two queue, the rest of
  // a burst must shed immediately with the retryable "overloaded" error.
  ServerFixture f("shed", /*workers=*/1, /*queue_limit=*/2);
  std::atomic<int> overloaded{0}, ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      Client c;
      if (!c.connect(f.server->socket_path())) return;
      try {
        c.stall(400);
        ok.fetch_add(1);
      } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), "overloaded");
        EXPECT_TRUE(e.retryable());
        overloaded.fetch_add(1);
      }
    });
    // Stagger so the first request is executing before the burst lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (auto& t : threads) t.join();
  // 1 executing + 2 queued admitted; up to 3 shed (scheduling may drain one
  // slot between sends, so allow ok in [3, 5] but require at least one shed
  // and a matching metrics counter).
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(overloaded.load() + ok.load(), 6);
  const sweep::Json m = f.connect().metrics();
  EXPECT_EQ(m["server"]["shed"].as_u64(),
            static_cast<std::uint64_t>(overloaded.load()));
}

TEST(Serve, ShutdownOpDrainsAndStops) {
  ServerFixture f("shutdown");
  Client c = f.connect();
  EXPECT_FALSE(f.server->shutdown_requested());
  c.shutdown_server();
  EXPECT_TRUE(f.server->shutdown_requested());
  f.server->stop();
  // Socket is unlinked: a fresh connect must fail.
  Client again;
  std::string err;
  EXPECT_FALSE(again.connect(f.server->socket_path(), &err));
}

TEST(Serve, StopDrainsAdmittedRequests) {
  ServerFixture f("drainq", /*workers=*/1, /*queue_limit=*/8);
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int i = 0; i < 3; ++i)
    threads.emplace_back([&] {
      Client c;
      if (!c.connect(f.server->socket_path())) return;
      try {
        c.stall(200);
        completed.fetch_add(1);
      } catch (const ServeError&) {
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  f.server->stop();  // graceful: admitted stalls must finish first
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 3);
}

}  // namespace
}  // namespace ihw::serve
