// Fuzz-style robustness tests: every imprecise unit is fed raw random bit
// patterns (including NaN payloads, infinities, subnormals, and extreme
// exponents) and must uphold its output contract -- well-formed results, the
// flush-to-zero policy, sign rules, and no UB (exercised under the normal
// build; the sweeps are also valuable under sanitizers).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fpcore/float_bits.h"
#include "ihw/ihw.h"

namespace ihw {
namespace {

float random_bits_float(common::Xoshiro256& rng) {
  return fp::from_bits<float>(static_cast<std::uint32_t>(rng()));
}

double random_bits_double(common::Xoshiro256& rng) {
  return fp::from_bits<double>(rng());
}

// The output contract shared by all units: never a subnormal (flush-to-zero
// designs), i.e. result is NaN, +-inf, +-0, or a normal number.
template <typename T>
::testing::AssertionResult well_formed(T v) {
  if (std::isnan(v) || std::isinf(v) || v == T(0)) {
    return ::testing::AssertionSuccess();
  }
  if (fp::is_subnormal(v))
    return ::testing::AssertionFailure() << "subnormal output " << v;
  return ::testing::AssertionSuccess();
}

constexpr int kIters = 300000;

TEST(FuzzUnits, IfpAddNeverEmitsSubnormals) {
  common::Xoshiro256 rng(1001);
  for (int i = 0; i < kIters; ++i) {
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    const int th = 1 + static_cast<int>(rng() % 27);
    EXPECT_TRUE(well_formed(ifp_add(a, b, th)));
    EXPECT_TRUE(well_formed(ifp_sub(a, b, th)));
  }
}

TEST(FuzzUnits, MultipliersRespectSignAndContract) {
  common::Xoshiro256 rng(1002);
  for (int i = 0; i < kIters; ++i) {
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    const int tr = static_cast<int>(rng() % 24);
    const float r[4] = {ifp_mul(a, b), acfp_mul(a, b, AcfpPath::Log, tr),
                        acfp_mul(a, b, AcfpPath::Full, tr),
                        trunc_mul(a, b, tr)};
    for (float v : r) {
      ASSERT_TRUE(well_formed(v));
      if (!std::isnan(v) && !std::isnan(a) && !std::isnan(b) && v != 0.0f) {
        ASSERT_EQ(std::signbit(v), std::signbit(a) != std::signbit(b))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(FuzzUnits, SfusHandleArbitraryBits) {
  common::Xoshiro256 rng(1003);
  for (int i = 0; i < kIters; ++i) {
    const float x = random_bits_float(rng);
    EXPECT_TRUE(well_formed(ircp(x)));
    EXPECT_TRUE(well_formed(irsqrt(x)));
    EXPECT_TRUE(well_formed(isqrt(x)));
    EXPECT_TRUE(well_formed(ilog2(x)));
    EXPECT_TRUE(well_formed(iexp2(x)));
    const float y = random_bits_float(rng);
    EXPECT_TRUE(well_formed(ifp_div(x, y)));
    EXPECT_TRUE(well_formed(ifp_fma(x, y, x, 8)));
  }
}

TEST(FuzzUnits, DoublePrecisionSweep) {
  common::Xoshiro256 rng(1004);
  for (int i = 0; i < kIters / 2; ++i) {
    const double a = random_bits_double(rng);
    const double b = random_bits_double(rng);
    const int tr = static_cast<int>(rng() % 53);
    EXPECT_TRUE(well_formed(ifp_add(a, b, 8)));
    EXPECT_TRUE(well_formed(ifp_mul(a, b)));
    EXPECT_TRUE(well_formed(acfp_mul(a, b, AcfpPath::Log, tr)));
    EXPECT_TRUE(well_formed(acfp_mul(a, b, AcfpPath::Full, tr)));
    EXPECT_TRUE(well_formed(trunc_mul(a, b, tr)));
    EXPECT_TRUE(well_formed(ircp(a)));
    EXPECT_TRUE(well_formed(ilog2(a)));
  }
}

TEST(FuzzUnits, NanPayloadsAlwaysPropagateAsNan) {
  common::Xoshiro256 rng(1005);
  for (int i = 0; i < 50000; ++i) {
    // Random NaN payloads (quiet and signaling patterns).
    const std::uint32_t payload =
        0x7F800001u | (static_cast<std::uint32_t>(rng()) & 0x807FFFFFu);
    const float nan = fp::from_bits<float>(payload);
    ASSERT_TRUE(std::isnan(nan));
    const float x = random_bits_float(rng);
    EXPECT_TRUE(std::isnan(ifp_add(nan, x, 8)));
    EXPECT_TRUE(std::isnan(ifp_mul(nan, x)));
    EXPECT_TRUE(std::isnan(acfp_mul(nan, x, AcfpPath::Full, 0)));
    EXPECT_TRUE(std::isnan(trunc_mul(nan, x, 5)));
    EXPECT_TRUE(std::isnan(ircp(nan)));
    EXPECT_TRUE(std::isnan(ifp_div(nan, x)));
  }
}

TEST(FuzzUnits, SubnormalOperandsBehaveAsZero) {
  common::Xoshiro256 rng(1006);
  for (int i = 0; i < 50000; ++i) {
    // A random subnormal: zero exponent, nonzero fraction.
    const std::uint32_t bits =
        (static_cast<std::uint32_t>(rng()) & 0x807FFFFFu) | 1u;
    const float sub = fp::from_bits<float>(bits & ~0x7F800000u);
    ASSERT_TRUE(fp::is_subnormal(sub) || sub == 0.0f);
    const float x = 3.25f;
    EXPECT_EQ(ifp_add(sub, x, 8), x);
    EXPECT_EQ(ifp_mul(sub, x), std::signbit(sub) ? -0.0f : 0.0f);
    EXPECT_EQ(acfp_mul(sub, x, AcfpPath::Log, 0),
              std::signbit(sub) ? -0.0f : 0.0f);
  }
}

TEST(FuzzUnits, DispatcherClosedOverRandomConfigs) {
  common::Xoshiro256 rng(1007);
  for (int i = 0; i < 20000; ++i) {
    IhwConfig cfg;
    cfg.add_enabled = rng() & 1;
    cfg.add_th = 1 + static_cast<int>(rng() % 27);
    cfg.mul_mode = static_cast<MulMode>(rng() % 5);
    cfg.mul_trunc = static_cast<int>(rng() % 24);
    cfg.rcp_enabled = rng() & 1;
    cfg.rsqrt_enabled = rng() & 1;
    cfg.sqrt_enabled = rng() & 1;
    cfg.log2_enabled = rng() & 1;
    cfg.div_enabled = rng() & 1;
    cfg.fma_enabled = rng() & 1;
    const FpDispatch d{cfg};
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    EXPECT_TRUE(well_formed(d.add(a, b)) || !cfg.add_enabled);
    EXPECT_TRUE(well_formed(d.mul(a, b)) || cfg.mul_mode == MulMode::Precise);
    (void)d.div(a, b);
    (void)d.rcp(a);
    (void)d.sqrt(std::fabs(a));
    (void)d.fma(a, b, a);
  }
}

}  // namespace
}  // namespace ihw
