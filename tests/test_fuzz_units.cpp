// Fuzz-style robustness tests: every imprecise unit is fed raw random bit
// patterns (including NaN payloads, infinities, subnormals, and extreme
// exponents) and must uphold its output contract -- well-formed results, the
// flush-to-zero policy, sign rules, and no UB (exercised under the normal
// build; the sweeps are also valuable under sanitizers).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "fpcore/float_bits.h"
#include "ihw/ihw.h"

namespace ihw {
namespace {

float random_bits_float(common::Xoshiro256& rng) {
  return fp::from_bits<float>(static_cast<std::uint32_t>(rng()));
}

double random_bits_double(common::Xoshiro256& rng) {
  return fp::from_bits<double>(rng());
}

// The output contract shared by all units: never a subnormal (flush-to-zero
// designs), i.e. result is NaN, +-inf, +-0, or a normal number.
template <typename T>
::testing::AssertionResult well_formed(T v) {
  if (std::isnan(v) || std::isinf(v) || v == T(0)) {
    return ::testing::AssertionSuccess();
  }
  if (fp::is_subnormal(v))
    return ::testing::AssertionFailure() << "subnormal output " << v;
  return ::testing::AssertionSuccess();
}

constexpr int kIters = 300000;

TEST(FuzzUnits, IfpAddNeverEmitsSubnormals) {
  common::Xoshiro256 rng(1001);
  for (int i = 0; i < kIters; ++i) {
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    const int th = 1 + static_cast<int>(rng() % 27);
    EXPECT_TRUE(well_formed(ifp_add(a, b, th)));
    EXPECT_TRUE(well_formed(ifp_sub(a, b, th)));
  }
}

TEST(FuzzUnits, MultipliersRespectSignAndContract) {
  common::Xoshiro256 rng(1002);
  for (int i = 0; i < kIters; ++i) {
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    const int tr = static_cast<int>(rng() % 24);
    const float r[4] = {ifp_mul(a, b), acfp_mul(a, b, AcfpPath::Log, tr),
                        acfp_mul(a, b, AcfpPath::Full, tr),
                        trunc_mul(a, b, tr)};
    for (float v : r) {
      ASSERT_TRUE(well_formed(v));
      if (!std::isnan(v) && !std::isnan(a) && !std::isnan(b) && v != 0.0f) {
        ASSERT_EQ(std::signbit(v), std::signbit(a) != std::signbit(b))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(FuzzUnits, SfusHandleArbitraryBits) {
  common::Xoshiro256 rng(1003);
  for (int i = 0; i < kIters; ++i) {
    const float x = random_bits_float(rng);
    EXPECT_TRUE(well_formed(ircp(x)));
    EXPECT_TRUE(well_formed(irsqrt(x)));
    EXPECT_TRUE(well_formed(isqrt(x)));
    EXPECT_TRUE(well_formed(ilog2(x)));
    EXPECT_TRUE(well_formed(iexp2(x)));
    const float y = random_bits_float(rng);
    EXPECT_TRUE(well_formed(ifp_div(x, y)));
    EXPECT_TRUE(well_formed(ifp_fma(x, y, x, 8)));
  }
}

TEST(FuzzUnits, DoublePrecisionSweep) {
  common::Xoshiro256 rng(1004);
  for (int i = 0; i < kIters / 2; ++i) {
    const double a = random_bits_double(rng);
    const double b = random_bits_double(rng);
    const int tr = static_cast<int>(rng() % 53);
    EXPECT_TRUE(well_formed(ifp_add(a, b, 8)));
    EXPECT_TRUE(well_formed(ifp_mul(a, b)));
    EXPECT_TRUE(well_formed(acfp_mul(a, b, AcfpPath::Log, tr)));
    EXPECT_TRUE(well_formed(acfp_mul(a, b, AcfpPath::Full, tr)));
    EXPECT_TRUE(well_formed(trunc_mul(a, b, tr)));
    EXPECT_TRUE(well_formed(ircp(a)));
    EXPECT_TRUE(well_formed(ilog2(a)));
  }
}

TEST(FuzzUnits, NanPayloadsAlwaysPropagateAsNan) {
  common::Xoshiro256 rng(1005);
  for (int i = 0; i < 50000; ++i) {
    // Random NaN payloads (quiet and signaling patterns).
    const std::uint32_t payload =
        0x7F800001u | (static_cast<std::uint32_t>(rng()) & 0x807FFFFFu);
    const float nan = fp::from_bits<float>(payload);
    ASSERT_TRUE(std::isnan(nan));
    const float x = random_bits_float(rng);
    EXPECT_TRUE(std::isnan(ifp_add(nan, x, 8)));
    EXPECT_TRUE(std::isnan(ifp_mul(nan, x)));
    EXPECT_TRUE(std::isnan(acfp_mul(nan, x, AcfpPath::Full, 0)));
    EXPECT_TRUE(std::isnan(trunc_mul(nan, x, 5)));
    EXPECT_TRUE(std::isnan(ircp(nan)));
    EXPECT_TRUE(std::isnan(ifp_div(nan, x)));
  }
}

TEST(FuzzUnits, SubnormalOperandsBehaveAsZero) {
  common::Xoshiro256 rng(1006);
  for (int i = 0; i < 50000; ++i) {
    // A random subnormal: zero exponent, nonzero fraction.
    const std::uint32_t bits =
        (static_cast<std::uint32_t>(rng()) & 0x807FFFFFu) | 1u;
    const float sub = fp::from_bits<float>(bits & ~0x7F800000u);
    ASSERT_TRUE(fp::is_subnormal(sub) || sub == 0.0f);
    const float x = 3.25f;
    EXPECT_EQ(ifp_add(sub, x, 8), x);
    EXPECT_EQ(ifp_mul(sub, x), std::signbit(sub) ? -0.0f : 0.0f);
    EXPECT_EQ(acfp_mul(sub, x, AcfpPath::Log, 0),
              std::signbit(sub) ? -0.0f : 0.0f);
  }
}

// --- systematic special-value semantics ------------------------------------
// Every imprecise unit is driven with the full IEEE special-value set: +-0,
// +-inf, NaN, subnormals (largest/smallest), max/min normals. Contracts:
// NaN in -> quiet NaN out (payload never escapes as garbage), inf/zero
// follow the IEEE rules the precise unit would apply, subnormal inputs act
// as signed zero, and no signaling-NaN or subnormal bit pattern escapes.

constexpr float kPInf = std::numeric_limits<float>::infinity();
constexpr float kQNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kMaxN = std::numeric_limits<float>::max();
constexpr float kMinN = std::numeric_limits<float>::min();       // min normal
constexpr float kSub = std::numeric_limits<float>::denorm_min();  // subnormal

const float kSpecials[] = {0.0f,  -0.0f, kPInf,  -kPInf, kQNan, kMaxN,
                           -kMaxN, kMinN, -kMinN, kSub,   -kSub, 1.0f,
                           -1.0f,  3.5f,  -3.5f};

// A NaN result must be quiet: the quiet bit (frac MSB) set, exponent all
// ones -- never a signaling pattern that could trap downstream.
::testing::AssertionResult quiet_nan(float v) {
  const auto bits = fp::to_bits(v);
  if (!std::isnan(v))
    return ::testing::AssertionFailure() << v << " is not NaN";
  if ((bits & 0x00400000u) == 0)
    return ::testing::AssertionFailure()
           << "signaling NaN pattern 0x" << std::hex << bits;
  return ::testing::AssertionSuccess();
}

TEST(SpecialValues, MultipliersFollowIeee) {
  for (float a : kSpecials) {
    for (float b : kSpecials) {
      const float r[4] = {ifp_mul(a, b), acfp_mul(a, b, AcfpPath::Log, 0),
                          acfp_mul(a, b, AcfpPath::Full, 0),
                          trunc_mul(a, b, 0)};
      const bool a0 = fp::flush_subnormal(a) == 0.0f && !std::isnan(a);
      const bool b0 = fp::flush_subnormal(b) == 0.0f && !std::isnan(b);
      for (float v : r) {
        ASSERT_TRUE(well_formed(v)) << "a=" << a << " b=" << b;
        if (std::isnan(a) || std::isnan(b)) {
          ASSERT_TRUE(quiet_nan(v)) << "a=" << a << " b=" << b;
        } else if ((std::isinf(a) && b0) || (std::isinf(b) && a0)) {
          ASSERT_TRUE(quiet_nan(v)) << "inf*0 a=" << a << " b=" << b;
        } else if (std::isinf(a) || std::isinf(b)) {
          ASSERT_TRUE(std::isinf(v)) << "a=" << a << " b=" << b;
          ASSERT_EQ(std::signbit(v), std::signbit(a) != std::signbit(b));
        } else if (a0 || b0) {
          ASSERT_EQ(v, 0.0f) << "a=" << a << " b=" << b;
          ASSERT_EQ(std::signbit(v), std::signbit(a) != std::signbit(b));
        }
      }
    }
  }
}

TEST(SpecialValues, AdderFollowsIeee) {
  for (float a : kSpecials) {
    for (float b : kSpecials) {
      for (int th : {1, 8, 27}) {
        const float s = ifp_add(a, b, th);
        const float d = ifp_sub(a, b, th);
        ASSERT_TRUE(well_formed(s)) << "a=" << a << " b=" << b;
        ASSERT_TRUE(well_formed(d)) << "a=" << a << " b=" << b;
        if (std::isnan(a) || std::isnan(b)) {
          ASSERT_TRUE(quiet_nan(s));
          ASSERT_TRUE(quiet_nan(d));
        } else if (std::isinf(a) && std::isinf(b)) {
          // inf + inf keeps the sign; inf - inf (opposite signs) is NaN.
          if (std::signbit(a) != std::signbit(b)) {
            ASSERT_TRUE(quiet_nan(s));
            ASSERT_TRUE(std::isinf(d));
          } else {
            ASSERT_TRUE(std::isinf(s));
            ASSERT_TRUE(quiet_nan(d));
          }
        } else if (std::isinf(a) || std::isinf(b)) {
          ASSERT_TRUE(std::isinf(s)) << "a=" << a << " b=" << b;
          ASSERT_TRUE(std::isinf(d)) << "a=" << a << " b=" << b;
        }
      }
    }
  }
  // Signed-zero sums, IEEE round-to-nearest rules.
  EXPECT_FALSE(std::signbit(ifp_add(0.0f, 0.0f, 8)));
  EXPECT_FALSE(std::signbit(ifp_add(0.0f, -0.0f, 8)));
  EXPECT_FALSE(std::signbit(ifp_add(-0.0f, 0.0f, 8)));
  EXPECT_TRUE(std::signbit(ifp_add(-0.0f, -0.0f, 8)));
  EXPECT_TRUE(std::signbit(ifp_sub(-0.0f, 0.0f, 8)));
  EXPECT_FALSE(std::signbit(ifp_sub(0.0f, -0.0f, 8)));
  // x + (-x) is +0, and subnormals act as signed zeros.
  EXPECT_EQ(ifp_add(1.5f, -1.5f, 8), 0.0f);
  EXPECT_FALSE(std::signbit(ifp_add(1.5f, -1.5f, 8)));
  EXPECT_TRUE(std::signbit(ifp_add(-kSub, -kSub, 8)));
}

TEST(SpecialValues, SfusFollowDocumentedEdgeRules) {
  for (float x : kSpecials) {
    for (float v : {ircp(x), irsqrt(x), isqrt(x), ilog2(x), iexp2(x)}) {
      ASSERT_TRUE(well_formed(v)) << "x=" << x;
    }
    if (std::isnan(x)) {
      ASSERT_TRUE(quiet_nan(ircp(x)));
      ASSERT_TRUE(quiet_nan(irsqrt(x)));
      ASSERT_TRUE(quiet_nan(isqrt(x)));
      ASSERT_TRUE(quiet_nan(ilog2(x)));
      ASSERT_TRUE(quiet_nan(iexp2(x)));
      ASSERT_TRUE(quiet_nan(ifp_div(x, 2.0f)));
      ASSERT_TRUE(quiet_nan(ifp_div(2.0f, x)));
      ASSERT_TRUE(quiet_nan(ifp_fma(x, 1.0f, 1.0f, 8)));
    }
  }
  // rcp: signed infinities at signed zero, signed zeros at infinity.
  EXPECT_EQ(ircp(0.0f), kPInf);
  EXPECT_EQ(ircp(-0.0f), -kPInf);
  EXPECT_EQ(ircp(kSub), kPInf);  // subnormal flushes to zero first
  EXPECT_EQ(ircp(kPInf), 0.0f);
  EXPECT_TRUE(std::signbit(ircp(-kPInf)));
  // Negative-domain SFUs produce quiet NaN.
  EXPECT_TRUE(quiet_nan(irsqrt(-1.0f)));
  EXPECT_TRUE(quiet_nan(isqrt(-1.0f)));
  EXPECT_TRUE(quiet_nan(ilog2(-1.0f)));
  // Edge singularities.
  EXPECT_EQ(irsqrt(0.0f), kPInf);
  EXPECT_EQ(isqrt(0.0f), 0.0f);
  EXPECT_EQ(ilog2(0.0f), -kPInf);
  EXPECT_EQ(ilog2(kPInf), kPInf);
  EXPECT_EQ(iexp2(-kPInf), 0.0f);
  EXPECT_EQ(iexp2(kPInf), kPInf);
  // Division special quotients.
  EXPECT_TRUE(quiet_nan(ifp_div(0.0f, 0.0f)));
  EXPECT_TRUE(quiet_nan(ifp_div(kPInf, kPInf)));
  EXPECT_EQ(ifp_div(1.0f, 0.0f), kPInf);
  EXPECT_EQ(ifp_div(-1.0f, 0.0f), -kPInf);
  EXPECT_EQ(ifp_div(1.0f, kPInf), 0.0f);
  EXPECT_TRUE(std::signbit(ifp_div(-1.0f, kPInf)));
  // Extreme normals never produce garbage: results saturate or flush.
  EXPECT_TRUE(well_formed(ifp_mul(kMaxN, kMaxN)));   // overflows to +inf
  EXPECT_TRUE(std::isinf(ifp_mul(kMaxN, kMaxN)));
  EXPECT_EQ(ifp_mul(kMinN, kMinN), 0.0f);            // underflow flushes
  EXPECT_TRUE(well_formed(ifp_fma(kMaxN, kMaxN, -kPInf, 8)));
}

TEST(SpecialValues, FmaPropagatesThroughBothStages) {
  // NaN in any operand position survives the mul stage and the add stage.
  EXPECT_TRUE(quiet_nan(ifp_fma(kQNan, 2.0f, 3.0f, 8)));
  EXPECT_TRUE(quiet_nan(ifp_fma(2.0f, kQNan, 3.0f, 8)));
  EXPECT_TRUE(quiet_nan(ifp_fma(2.0f, 3.0f, kQNan, 8)));
  // inf*0 inside the mul stage is NaN regardless of the addend.
  EXPECT_TRUE(quiet_nan(ifp_fma(kPInf, 0.0f, 1.0f, 8)));
  // inf + finite keeps the infinity.
  EXPECT_EQ(ifp_fma(kPInf, 2.0f, -10.0f, 8), kPInf);
}

TEST(FuzzUnits, DispatcherClosedOverRandomConfigs) {
  common::Xoshiro256 rng(1007);
  for (int i = 0; i < 20000; ++i) {
    IhwConfig cfg;
    cfg.add_enabled = rng() & 1;
    cfg.add_th = 1 + static_cast<int>(rng() % 27);
    cfg.mul_mode = static_cast<MulMode>(rng() % 5);
    cfg.mul_trunc = static_cast<int>(rng() % 24);
    cfg.rcp_enabled = rng() & 1;
    cfg.rsqrt_enabled = rng() & 1;
    cfg.sqrt_enabled = rng() & 1;
    cfg.log2_enabled = rng() & 1;
    cfg.div_enabled = rng() & 1;
    cfg.fma_enabled = rng() & 1;
    const FpDispatch d{cfg};
    const float a = random_bits_float(rng);
    const float b = random_bits_float(rng);
    EXPECT_TRUE(well_formed(d.add(a, b)) || !cfg.add_enabled);
    EXPECT_TRUE(well_formed(d.mul(a, b)) || cfg.mul_mode == MulMode::Precise);
    (void)d.div(a, b);
    (void)d.rcp(a);
    (void)d.sqrt(std::fabs(a));
    (void)d.fma(a, b, a);
  }
}

}  // namespace
}  // namespace ihw
