// The ABFT layer's contract (DESIGN.md §17): detect mode never changes the
// output and never flags fault-free runs at the calibrated thresholds;
// detection, recovery, and every counter are bit-deterministic across tile
// sizes, thread counts, and ISA levels (the forced-ISA ctest variants rerun
// this binary per backend); injected faults are either caught-and-recovered
// or provably below the quality bound; non-finite results are immediate
// detections; and the screened mac_n span flags NaN/Inf partials whose true
// chain is finite instead of letting them poison downstream screens.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "apps/mlp.h"
#include "common/args.h"
#include "common/rng.h"
#include "common/sweep_flags.h"
#include "fault/guarded_dispatch.h"
#include "fault/spec.h"
#include "gemm/abft.h"
#include "gemm/gemm.h"
#include "gpu/context.h"

namespace ihw {
namespace {

using gemm::AbftMode;
using gemm::AccumMode;
using gemm::GemmConfig;
using gemm::abft::AbftCounters;
using gemm::abft::ScopedAbftCounters;
using gpu::FpContext;
using gpu::ScopedContext;

std::vector<float> inputs(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

bool spans_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

GemmConfig policy(AccumMode m, int knob) {
  GemmConfig g;
  g.accum = m;
  if (m == AccumMode::kFp32Trunc) g.accum_trunc = knob;
  if (m == AccumMode::kIfpAdd) g.accum_th = knob;
  if (m == AccumMode::kWideFp64) g.accum_block = knob;
  return g;
}

const std::vector<std::pair<std::string, GemmConfig>>& accum_policies() {
  static const std::vector<std::pair<std::string, GemmConfig>> kPolicies = {
      {"fp32", policy(AccumMode::kFp32, 0)},
      {"fp32_trunc tr=6", policy(AccumMode::kFp32Trunc, 6)},
      {"ifp_add th=8", policy(AccumMode::kIfpAdd, 8)},
      {"wide_fp64 blk=32", policy(AccumMode::kWideFp64, 32)},
  };
  return kPolicies;
}

/// Mul-class-only fault config: the policy accumulator sits outside the
/// voltage-overscaled multiply array (gemm::detail::canonical_element docs).
IhwConfig faulted_ifp(double rate, std::uint64_t seed) {
  IhwConfig cfg = IhwConfig::mul_only(MulMode::ImpreciseSimple, 0);
  cfg.faults.seed = seed;
  cfg.faults[fault::UnitClass::Mul].rate = rate;
  return cfg;
}

void expect_counters_eq(const AbftCounters& a, const AbftCounters& b,
                        const std::string& what) {
  EXPECT_EQ(a.checksums, b.checksums) << what;
  EXPECT_EQ(a.detections, b.detections) << what;
  EXPECT_EQ(a.nonfinite, b.nonfinite) << what;
  EXPECT_EQ(a.blocks_recovered, b.blocks_recovered) << what;
  EXPECT_EQ(a.fp_screens, b.fp_screens) << what;
  EXPECT_EQ(a.residual_max, b.residual_max) << what;  // serial fp64: exact
}

// --- fault-free behaviour ---------------------------------------------------

TEST(AbftFaultFree, DetectModeKeepsBitsAndNeverFlags) {
  constexpr int kM = 41, kN = 33, kK = 65;
  const auto A = inputs(std::size_t(kM) * kK, 301);
  const auto B = inputs(std::size_t(kK) * kN, 302);
  const std::vector<std::pair<std::string, IhwConfig>> muls = {
      {"precise", IhwConfig::precise()},
      {"ifp", IhwConfig::mul_only(MulMode::ImpreciseSimple, 0)},
      {"acfp_log tr=8", IhwConfig::mul_only(MulMode::MitchellLog, 8)},
      {"trunc 12", IhwConfig::mul_only(MulMode::BitTruncated, 12)},
  };
  for (const auto& [mul_label, icfg] : muls) {
    for (const auto& [acc_label, base] : accum_policies()) {
      std::vector<float> plain(std::size_t(kM) * kN);
      std::vector<float> checked(std::size_t(kM) * kN);
      GemmConfig g = base;
      FpContext ctx(icfg);
      ScopedContext scope(ctx);
      gemm::run(A.data(), B.data(), plain.data(), kM, kN, kK, g);
      g.abft = AbftMode::kDetect;
      AbftCounters c;
      {
        ScopedAbftCounters sink(c);
        gemm::run(A.data(), B.data(), checked.data(), kM, kN, kK, g);
      }
      const std::string what = mul_label + " / " + acc_label;
      EXPECT_TRUE(spans_identical(checked, plain)) << what;
      EXPECT_EQ(c.checksums, std::uint64_t(kM + kN)) << what;
      EXPECT_EQ(c.detections, 0u) << what;
      EXPECT_EQ(c.nonfinite, 0u) << what;
      EXPECT_LE(c.residual_max, 1.0) << what;
    }
  }
}

TEST(AbftFaultFree, MlpOperatingGridHasZeroFalsePositives) {
  // The ten mlp_inference operating points, in detect mode with no faults:
  // the threshold calibration must stay exactly quiet on every one.
  struct Point {
    IhwConfig cfg;
    GemmConfig gcfg;
  };
  const Point grid[] = {
      {IhwConfig::precise(), policy(AccumMode::kFp32, 0)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kFp32, 0)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kWideFp64, 32)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kFp32Trunc, 6)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kFp32Trunc, 12)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kIfpAdd, 8)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kIfpAdd, 4)},
      {IhwConfig::mul_only(MulMode::ImpreciseSimple, 0),
       policy(AccumMode::kIfpAdd, 2)},
      {IhwConfig::mul_only(MulMode::MitchellLog, 8),
       policy(AccumMode::kFp32, 0)},
      {IhwConfig::mul_only(MulMode::BitTruncated, 12),
       policy(AccumMode::kFp32, 0)},
  };
  for (const auto& pt : grid) {
    apps::MlpParams p;
    p.samples = 64;
    p.gemm = pt.gcfg;
    p.gemm.abft = AbftMode::kDetect;
    FpContext ctx(pt.cfg);
    apps::MlpResult res;
    {
      ScopedContext scope(ctx);
      res = apps::run_mlp(p);
    }
    // Two layers: (samples + hidden) + (samples + classes) checks.
    EXPECT_EQ(res.abft.checksums,
              std::uint64_t(2 * p.samples + p.hidden + p.classes));
    EXPECT_EQ(res.abft.detections, 0u);
    EXPECT_EQ(res.abft.nonfinite, 0u);
  }
}

// --- determinism ------------------------------------------------------------

TEST(AbftDeterminism, BitsAndCountersMatchAcrossThreadsTilingsPolicies) {
  constexpr int kM = 48, kN = 48, kK = 48;
  const auto A = inputs(std::size_t(kM) * kK, 303);
  const auto B = inputs(std::size_t(kK) * kN, 304);
  const IhwConfig cfg = faulted_ifp(2e-3, 0xfee1);

  for (const auto& [acc_label, base] : accum_policies()) {
    // Baseline: serial, default tiling.
    std::vector<float> ref(std::size_t(kM) * kN);
    GemmConfig g0 = base;
    g0.abft = AbftMode::kRecover;
    AbftCounters c0;
    FpContext ref_ctx(cfg);
    {
      ScopedContext scope(ref_ctx);
      ScopedAbftCounters sink(c0);
      gemm::run(A.data(), B.data(), ref.data(), kM, kN, kK, g0);
    }
    EXPECT_GT(ref_ctx.fault_counters().total_injected(), 0u) << acc_label;

    // {mc, kc, nc, threads}: tiny-uneven, degenerate, canonical-threaded.
    const int variants[][4] = {{3, 7, 5, 1}, {1, 16, 8, 1}, {64, 256, 256, 3}};
    for (const auto& v : variants) {
      GemmConfig g = g0;
      g.mc = v[0];
      g.kc = v[1];
      g.nc = v[2];
      g.threads = v[3];
      std::vector<float> out(std::size_t(kM) * kN);
      AbftCounters c;
      FpContext ctx(cfg);
      {
        ScopedContext scope(ctx);
        ScopedAbftCounters sink(c);
        gemm::run(A.data(), B.data(), out.data(), kM, kN, kK, g);
      }
      const std::string what = acc_label + " tiling " +
                               std::to_string(v[0]) + "/" +
                               std::to_string(v[1]) + "/" +
                               std::to_string(v[2]) + " threads " +
                               std::to_string(v[3]);
      EXPECT_TRUE(spans_identical(out, ref)) << what;
      expect_counters_eq(c, c0, what);
      const auto& fa = ctx.fault_counters();
      const auto& fb = ref_ctx.fault_counters();
      EXPECT_EQ(fa.injected, fb.injected) << what;
      EXPECT_EQ(fa.guard_trips, fb.guard_trips) << what;
      EXPECT_EQ(fa.nonfinite_flags, fb.nonfinite_flags) << what;
      EXPECT_EQ(ctx.counters().counts, ref_ctx.counters().counts) << what;
    }
  }
}

// --- injected-fault safety contract -----------------------------------------

TEST(AbftRecover, InjectedFaultsCaughtOrBelowBound) {
  constexpr int kM = 64, kN = 64, kK = 64;
  const auto A = inputs(std::size_t(kM) * kK, 305);
  const auto B = inputs(std::size_t(kK) * kN, 306);
  const IhwConfig clean = IhwConfig::mul_only(MulMode::ImpreciseSimple, 0);
  const IhwConfig cfg = faulted_ifp(1e-3, 0xabf7);
  const GemmConfig base = policy(AccumMode::kFp32, 0);

  std::vector<float> ref(std::size_t(kM) * kN);
  {
    FpContext ctx(clean);
    ScopedContext scope(ctx);
    gemm::run(A.data(), B.data(), ref.data(), kM, kN, kK, base);
  }
  const auto th =
      gemm::abft::thresholds(A.data(), B.data(), kM, kN, kK, base, clean);

  GemmConfig g = base;
  g.abft = AbftMode::kRecover;
  std::vector<float> rec(std::size_t(kM) * kN);
  AbftCounters c;
  FpContext ctx(cfg);
  {
    ScopedContext scope(ctx);
    ScopedAbftCounters sink(c);
    gemm::run(A.data(), B.data(), rec.data(), kM, kN, kK, g);
  }
  EXPECT_GT(ctx.fault_counters().total_injected(), 0u);
  EXPECT_GT(c.detections, 0u);
  EXPECT_GT(c.blocks_recovered, 0u);

  // After recovery nothing may sit past the per-element quality bound.
  for (int i = 0; i < kM; ++i) {
    for (int j = 0; j < kN; ++j) {
      const std::size_t at = std::size_t(i) * kN + j;
      const double d = double(rec[at]) - double(ref[at]);
      const double bound = 2.0 * std::min(th.row[i], th.col[j]);
      ASSERT_TRUE(std::isfinite(double(rec[at]))) << i << "," << j;
      ASSERT_LE(std::fabs(d), bound) << i << "," << j;
    }
  }
}

TEST(AbftRecover, NonFiniteChecksumsDetectImmediately) {
  constexpr int kM = 48, kN = 48, kK = 48;
  const auto A = inputs(std::size_t(kM) * kK, 307);
  const auto B = inputs(std::size_t(kK) * kN, 308);
  // Stuck-at-1 on the product's top exponent bits: elements blow up to
  // ~2^126 and a few of those in one fp32 chain overflow to Inf.
  IhwConfig cfg = IhwConfig::mul_only(MulMode::ImpreciseSimple, 0);
  auto& spec = cfg.faults[fault::UnitClass::Mul];
  spec.rate = 0.05;
  spec.model = fault::FaultModel::StuckAt1;
  spec.bit_lo = 28;
  spec.bit_hi = 30;

  GemmConfig g;
  g.abft = AbftMode::kRecover;
  std::vector<float> out(std::size_t(kM) * kN);
  AbftCounters c;
  FpContext ctx(cfg);
  {
    ScopedContext scope(ctx);
    ScopedAbftCounters sink(c);
    gemm::run(A.data(), B.data(), out.data(), kM, kN, kK, g);
  }
  EXPECT_GT(c.nonfinite, 0u);
  EXPECT_GT(c.detections, 0u);
  for (float v : out) ASSERT_TRUE(std::isfinite(double(v)));
}

// --- screened mac_n NaN/Inf semantics ---------------------------------------

TEST(MacNonFinite, ScreenedSpanFlagsPoisonedPartials) {
  // Detect-only guard (recover off): a fault-made Inf survives the mul
  // screen, poisons the add screen's precise reference (Inf + c), and would
  // propagate unflagged without the element-level backstop. The backstop
  // must count it as a nonfinite flag and trip the epoch.
  IhwConfig cfg = IhwConfig::mul_only(MulMode::ImpreciseSimple, 0);
  auto& spec = cfg.faults[fault::UnitClass::Mul];
  spec.rate = 1.0;  // every product faulted
  spec.model = fault::FaultModel::StuckAt1;
  spec.bit_lo = 30;
  spec.bit_hi = 30;
  cfg.guard.enabled = true;
  cfg.guard.recover = false;

  constexpr std::size_t kN = 16;
  // Products in [1, 2): exponent field 127, so OR-ing bit 30 makes it 255.
  std::vector<float> a(kN, 1.25f), b(kN, 1.0f), c(kN, 0.5f), out(kN);
  fault::GuardedDispatch d(cfg);
  d.begin_epoch(0);
  d.mac_n(a.data(), b.data(), c.data(), out.data(), kN);
  EXPECT_GT(d.counters().nonfinite_flags, 0u);
  EXPECT_TRUE(d.epoch_tripped());
  bool any_nonfinite = false;
  for (float v : out) any_nonfinite |= !std::isfinite(double(v));
  EXPECT_TRUE(any_nonfinite);  // detect-only: flagged, deliberately unrepaired

  // Same span with recovery on: the mul-level screen repairs the Inf before
  // the add, so the chain stays finite and matches the precise composition.
  cfg.guard.recover = true;
  fault::GuardedDispatch dr(cfg);
  dr.begin_epoch(0);
  dr.mac_n(a.data(), b.data(), c.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(std::isfinite(double(out[i]))) << i;
    EXPECT_EQ(out[i], a[i] * b[i] + c[i]) << i;
  }
}

// --- shared --abft flag parsing ---------------------------------------------

TEST(AbftFlag, ParsesAndRejectsStrictly) {
  auto parse = [](const char* flag) {
    std::vector<char*> argv = {const_cast<char*>("bench"),
                               const_cast<char*>(flag)};
    common::Args args(static_cast<int>(argv.size()), argv.data());
    return common::parse_abft_flag(args);
  };
  EXPECT_EQ(parse("--abft=off"), 0);
  EXPECT_EQ(parse("--abft=detect"), 1);
  EXPECT_EQ(parse("--abft=recover"), 2);
  {
    std::vector<char*> argv = {const_cast<char*>("bench")};
    common::Args args(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(common::parse_abft_flag(args), 0);  // absent = off
    EXPECT_EQ(common::SweepFlags::from_args(args).abft, 0);
  }
  EXPECT_THROW(parse("--abft=1"), common::ArgError);
  EXPECT_THROW(parse("--abft=on"), common::ArgError);
  try {
    parse("--abft=banana");
    FAIL() << "expected ArgError";
  } catch (const common::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("--abft"), std::string::npos);
  }
}

}  // namespace
}  // namespace ihw
