// Tests for the shared utilities: tables, CLI args, grids, image IO, RNG.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/args.h"
#include "common/image.h"
#include "common/rng.h"
#include "common/table.h"

namespace ihw::common {
namespace {

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.25, 2);
  t.row().add("b").add(42LL);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("----"), std::string::npos);
  // Every line begins a new row; "alpha" and its value share a line.
  std::istringstream is(s);
  std::string line;
  bool found = false;
  while (std::getline(is, line))
    if (line.find("alpha") != std::string::npos) {
      EXPECT_NE(line.find("1.25"), std::string::npos);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Table, CsvEmission) {
  Table t({"a", "b"});
  t.row().add("x").add(1LL);
  t.row().add("y").add(2LL);
  EXPECT_EQ(t.csv(), "a,b\nx,1\ny,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.3206), "32.06%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(Args, ParsesFlagsKeyValuesAndPositionals) {
  const char* argv[] = {"prog", "--size=128", "--verbose", "input.txt",
                        "--ratio=0.5", "--name=x"};
  Args args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("size", 0), 128);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_EQ(args.get("missing", "def"), "def");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_TRUE(args.has("size"));
  EXPECT_FALSE(args.has("nope"));
}

TEST(Args, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=1"};
  Args args(4, const_cast<char**>(argv));
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Args, RejectsMalformedNumericValues) {
  const char* argv[] = {"prog",          "--size=12junk", "--ratio=0.5x",
                        "--count=abc",   "--big=99999999999999999999",
                        "--huge=1e9999", "--ok=-42",      "--okd=-2.5e3"};
  Args args(8, const_cast<char**>(argv));
  // Trailing garbage and non-numeric values raise ArgError naming the flag.
  EXPECT_THROW(args.get_int("size", 0), ArgError);
  EXPECT_THROW(args.get_double("ratio", 0.0), ArgError);
  EXPECT_THROW(args.get_int("count", 0), ArgError);
  EXPECT_THROW(args.get_int("big", 0), ArgError);     // integer overflow
  EXPECT_THROW(args.get_double("huge", 0.0), ArgError);  // double overflow
  // The message names the offending flag.
  try {
    args.get_int("count", 0);
    FAIL() << "expected ArgError";
  } catch (const ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos);
  }
  // Well-formed negatives still parse via the generic accessors.
  EXPECT_EQ(args.get_int("ok", 0), -42);
  EXPECT_DOUBLE_EQ(args.get_double("okd", 0.0), -2500.0);
  // Absent keys fall back to the default without validation.
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Args, ThreadsFlagValidatesRange) {
  {
    const char* argv[] = {"prog", "--threads=-3"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_THROW(args.threads(), ArgError);
  }
  {
    const char* argv[] = {"prog", "--threads=2000000"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_THROW(args.threads(), ArgError);
  }
  {
    const char* argv[] = {"prog", "--threads=8cores"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_THROW(args.threads(), ArgError);
  }
  {
    const char* argv[] = {"prog", "--threads=4"};
    Args args(2, const_cast<char**>(argv));
    EXPECT_EQ(args.threads(), 4);
  }
  {
    const char* argv[] = {"prog"};
    Args args(1, const_cast<char**>(argv));
    EXPECT_EQ(args.threads(), 0);  // absent -> hardware concurrency
  }
}

TEST(Grid, IndexingAndCast) {
  Grid<double> g(3, 4, 1.5);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.size(), 12u);
  g(2, 3) = 9.0;
  EXPECT_EQ(g(2, 3), 9.0);
  EXPECT_EQ(g.data()[2 * 4 + 3], 9.0);
  const auto f = g.cast<float>();
  EXPECT_EQ(f(2, 3), 9.0f);
  EXPECT_EQ(f(0, 0), 1.5f);
}

TEST(ImageIo, PgmRoundTripHeaderAndSize) {
  GridF img(4, 6, 0.0f);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      img(r, c) = static_cast<float>(r * 6 + c);
  const std::string path = "/tmp/ihw_test_img.pgm";
  ASSERT_TRUE(write_pgm(path, img));
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  int maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 6u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  std::vector<char> pixels(24);
  is.read(pixels.data(), 24);
  EXPECT_EQ(is.gcount(), 24);
  // Autoscaling maps min -> 0 and max -> 255.
  EXPECT_EQ(static_cast<unsigned char>(pixels[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(pixels[23]), 255u);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmReadBackRoundTripsValues) {
  GridF img(5, 7);
  for (std::size_t i = 0; i < img.size(); ++i)
    img.data()[i] = static_cast<float>((i * 37) % 256);
  const std::string path = "/tmp/ihw_test_rt.pgm";
  // Write without autoscale distortion: range already [0, 255].
  ASSERT_TRUE(write_pgm(path, img, 0.0f, 255.0f));
  const GridF back = read_pgm(path);
  ASSERT_EQ(back.rows(), 5u);
  ASSERT_EQ(back.cols(), 7u);
  for (std::size_t i = 0; i < img.size(); ++i)
    ASSERT_NEAR(back.data()[i], img.data()[i], 1.0f);  // 8-bit quantization
  std::remove(path.c_str());
}

TEST(ImageIo, PgmReaderRejectsGarbage) {
  EXPECT_EQ(read_pgm("/tmp/ihw_does_not_exist.pgm").size(), 0u);
  const std::string path = "/tmp/ihw_bad.pgm";
  {
    std::ofstream os(path);
    os << "P6\n2 2\n255\nxxxx";
  }
  EXPECT_EQ(read_pgm(path).size(), 0u);
  {
    std::ofstream os(path);
    os << "P5\n4 4\n255\nshort";  // truncated payload
  }
  EXPECT_EQ(read_pgm(path).size(), 0u);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmReaderSkipsComments) {
  const std::string path = "/tmp/ihw_comment.pgm";
  {
    std::ofstream os(path, std::ios::binary);
    os << "P5\n# a comment line\n2 1\n255\n";
    os.put(static_cast<char>(10));
    os.put(static_cast<char>(200));
  }
  const GridF img = read_pgm(path);
  ASSERT_EQ(img.size(), 2u);
  EXPECT_FLOAT_EQ(img(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(img(0, 1), 200.0f);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTrip) {
  RgbImage img(3, 2);
  img.at(0, 0)[0] = 255;
  img.at(2, 1)[2] = 128;
  const std::string path = "/tmp/ihw_test_img.ppm";
  ASSERT_TRUE(write_ppm(path, img));
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  int maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3u);
  EXPECT_EQ(h, 2u);
  is.get();
  std::vector<unsigned char> px(18);
  is.read(reinterpret_cast<char*>(px.data()), 18);
  EXPECT_EQ(px[0], 255u);
  EXPECT_EQ(px[17], 128u);
  std::remove(path.c_str());
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRangesRespectBounds) {
  Xoshiro256 rng(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
    const float f = rng.uniformf();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, RoughlyUniform) {
  Xoshiro256 rng(11);
  int bins[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) bins[static_cast<int>(rng.uniform() * 10)]++;
  for (int b : bins) EXPECT_NEAR(b, n / 10, n / 100);
}

}  // namespace
}  // namespace ihw::common
