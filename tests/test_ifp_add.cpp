// Tests for the TH-threshold imprecise adder, including the four error-bound
// cases of Ch. 4.1.1 as parameterized property sweeps.
#include "ihw/ifp_add.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ihw {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

TEST(IfpAdd, SpecialValues) {
  EXPECT_TRUE(std::isnan(ifp_add(kNan, 1.0f, 8)));
  EXPECT_TRUE(std::isnan(ifp_add(1.0f, kNan, 8)));
  EXPECT_TRUE(std::isnan(ifp_add(kInf, -kInf, 8)));
  EXPECT_EQ(ifp_add(kInf, 1.0f, 8), kInf);
  EXPECT_EQ(ifp_add(-kInf, 1.0f, 8), -kInf);
  EXPECT_EQ(ifp_add(kInf, kInf, 8), kInf);
  EXPECT_EQ(ifp_add(0.0f, 3.5f, 8), 3.5f);
  EXPECT_EQ(ifp_add(3.5f, 0.0f, 8), 3.5f);
  EXPECT_EQ(ifp_add(0.0f, 0.0f, 8), 0.0f);
}

TEST(IfpAdd, SubnormalOperandsFlushToZero) {
  const float sub = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(ifp_add(sub, 0.0f, 8), 0.0f);
  EXPECT_EQ(ifp_add(sub, sub, 8), 0.0f);
  EXPECT_EQ(ifp_add(sub, 1.0f, 8), 1.0f);
}

TEST(IfpAdd, ExactCancellationGivesZero) {
  EXPECT_EQ(ifp_add(1.5f, -1.5f, 8), 0.0f);
  EXPECT_EQ(ifp_sub(2.75f, 2.75f, 8), 0.0f);
}

TEST(IfpAdd, SmallerOperandDroppedBeyondThreshold) {
  // d = 10 >= TH = 8: b vanishes in the shifter.
  EXPECT_EQ(ifp_add(1024.0f, 1.0f, 8), 1024.0f);
  EXPECT_EQ(ifp_add(1.0f, 1024.0f, 8), 1024.0f);  // swap handled
  EXPECT_EQ(ifp_sub(1024.0f, 1.0f, 8), 1024.0f);
  // d = 7 < TH: contribution kept.
  EXPECT_GT(ifp_add(128.0f, 1.0f, 8), 128.0f);
}

TEST(IfpAdd, CommutativeForAddition) {
  common::Xoshiro256 rng(11);
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(-100, 100));
    const float b = static_cast<float>(rng.uniform(-100, 100));
    EXPECT_EQ(ifp_add(a, b, 8), ifp_add(b, a, 8));
  }
}

TEST(IfpAdd, NegationSymmetry) {
  common::Xoshiro256 rng(12);
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(-100, 100));
    const float b = static_cast<float>(rng.uniform(-100, 100));
    EXPECT_EQ(ifp_add(-a, -b, 8), -ifp_add(a, b, 8));
  }
}

TEST(IfpAdd, ExactWhenOperandsFitTheDatapath) {
  // Operands whose fractions fit in TH bits and align without loss add
  // exactly.
  EXPECT_EQ(ifp_add(1.5f, 1.25f, 8), 2.75f);
  EXPECT_EQ(ifp_add(3.0f, 5.0f, 8), 8.0f);
  EXPECT_EQ(ifp_sub(5.0f, 3.0f, 8), 2.0f);
  EXPECT_EQ(ifp_add(0.5f, 0.5f, 8), 1.0f);
}

// --- Ch. 4.1.1 error-bound property sweeps --------------------------------

class IfpAddBound : public ::testing::TestWithParam<int> {};

// Case (a)+(b): effective addition, any exponent difference. Bound:
// max(1/(2^(TH-1)+1), truncation of both operands) <= 2^-(TH-1).
TEST_P(IfpAddBound, EffectiveAdditionBound) {
  const int th = GetParam();
  common::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(th));
  // Beyond TH = frac_bits+1 the datapath is limited by the fraction field
  // itself (results are truncated, not rounded, into 23 bits).
  const double bound = std::ldexp(1.0, -(std::min(th, 24) - 1)) + 1e-9;
  for (int i = 0; i < 200000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-12, 12))));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-12, 12))));
    const double exact = static_cast<double>(a) + static_cast<double>(b);
    const double approx = ifp_add(a, b, th);
    ASSERT_LE(std::fabs(approx - exact) / exact, bound)
        << "a=" << a << " b=" << b << " th=" << th;
  }
}

// Case (c): effective subtraction with d >= TH. Bound: 1/(2^(TH-1)-1).
TEST_P(IfpAddBound, SubtractionBeyondThresholdBound) {
  const int th = GetParam();
  if (th < 2) GTEST_SKIP() << "bound degenerate at TH=1";
  common::Xoshiro256 rng(2000 + static_cast<std::uint64_t>(th));
  const double bound = 1.0 / (std::ldexp(1.0, th - 1) - 1.0) + 1e-9;
  for (int i = 0; i < 100000; ++i) {
    const int d = th + static_cast<int>(rng.uniform(0, 8));
    const float a = static_cast<float>(std::ldexp(rng.uniform(1.0, 2.0), d));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    const double exact = static_cast<double>(a) - static_cast<double>(b);
    const double approx = ifp_sub(a, b, th);
    ASSERT_LE(std::fabs(approx - exact) / exact, bound);
  }
}

// Case (d): near subtraction -- relative error unbounded but the *absolute*
// error stays below the datapath truncation granule, so the output quality
// impact is bounded (the paper's argument).
TEST_P(IfpAddBound, NearSubtractionAbsoluteErrorBounded) {
  const int th = GetParam();
  common::Xoshiro256 rng(3000 + static_cast<std::uint64_t>(th));
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    const double exact = static_cast<double>(a) - static_cast<double>(b);
    const double approx = ifp_sub(a, b, th);
    // Both operands truncated at weight 2^-TH relative to exponent 0..1.
    ASSERT_LE(std::fabs(approx - exact), std::ldexp(2.05, -th));
  }
}

INSTANTIATE_TEST_SUITE_P(ThSweep, IfpAddBound,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 16, 20,
                                           23, 27));

TEST(IfpAdd, Th8HeadlineBoundIsTight) {
  // The paper quotes emax ~ 0.78% for TH=8 effective addition; the sweep
  // should approach it.
  common::Xoshiro256 rng(42);
  double max_rel = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const double exact = static_cast<double>(a) + static_cast<double>(b);
    max_rel = std::max(max_rel, std::fabs(ifp_add(a, b, 8) - exact) / exact);
  }
  EXPECT_LE(max_rel, 0.0079);
  EXPECT_GE(max_rel, 0.006);
}

TEST(IfpAdd, DoublePrecisionBoundsHold) {
  common::Xoshiro256 rng(13);
  for (int i = 0; i < 200000; ++i) {
    const double a = std::ldexp(rng.uniform(1.0, 2.0),
                                static_cast<int>(rng.uniform(-40, 40)));
    const double b = std::ldexp(rng.uniform(1.0, 2.0),
                                static_cast<int>(rng.uniform(-40, 40)));
    const double approx = ifp_add(a, b, 8);
    ASSERT_LE(std::fabs(approx - (a + b)) / (a + b), 0.0079);
  }
}

TEST(IfpAdd, LargerThresholdNeverHurtsAccuracyOnAverage) {
  common::Xoshiro256 rng(14);
  double sum_err[2] = {0.0, 0.0};
  for (int i = 0; i < 200000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const double exact = static_cast<double>(a) + static_cast<double>(b);
    sum_err[0] += std::fabs(ifp_add(a, b, 4) - exact) / exact;
    sum_err[1] += std::fabs(ifp_add(a, b, 12) - exact) / exact;
  }
  EXPECT_LT(sum_err[1], sum_err[0]);
}

}  // namespace
}  // namespace ihw
