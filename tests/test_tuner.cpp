// Tests for the Fig. 10 iterative quality-tuning loop.
#include "quality/tuner.h"

#include <gtest/gtest.h>

namespace ihw::quality {
namespace {

// Synthetic quality model: each enabled unit costs quality; the multiplier
// mode costs by its error magnitude. Mirrors the error-characterization
// ordering the tuner assumes.
double synthetic_quality(const ihw::IhwConfig& c) {
  double q = 1.0;
  if (c.rsqrt_enabled) q -= 0.15;
  if (c.sqrt_enabled) q -= 0.10;
  switch (c.mul_mode) {
    case ihw::MulMode::ImpreciseSimple: q -= 0.30; break;
    case ihw::MulMode::MitchellLog: q -= 0.20; break;
    case ihw::MulMode::MitchellFull: q -= 0.05; break;
    default: break;
  }
  if (c.log2_enabled) q -= 0.04;
  if (c.div_enabled) q -= 0.03;
  if (c.rcp_enabled) q -= 0.03;
  if (c.fma_enabled) q -= 0.02;
  if (c.add_enabled) q -= 0.01;
  return q;
}

TEST(Tuner, AcceptsAggressiveConfigWhenConstraintLoose) {
  const auto res = tune(synthetic_quality, 0.05, ihw::IhwConfig::all_imprecise());
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.history.size(), 1u);  // first evaluation already passes
  EXPECT_TRUE(res.config.any_enabled());
}

TEST(Tuner, BacksOffUntilConstraintMet) {
  // Constraint 0.80: must disable rsqrt (0.15) and sqrt (0.10) and soften
  // the multiplier before passing.
  const auto res = tune(synthetic_quality, 0.80, ihw::IhwConfig::all_imprecise());
  EXPECT_TRUE(res.satisfied);
  EXPECT_FALSE(res.config.rsqrt_enabled);
  EXPECT_FALSE(res.config.sqrt_enabled);
  EXPECT_GE(res.quality, 0.80);
  EXPECT_GT(res.history.size(), 1u);
  // History qualities are what the evaluator returned.
  for (const auto& step : res.history)
    EXPECT_DOUBLE_EQ(step.quality, synthetic_quality(step.config));
}

TEST(Tuner, SoftensMultiplierBeforeDisablingIt) {
  // A constraint that the full-path multiplier satisfies but the simple one
  // does not: the tuner should land on MitchellFull, not Precise.
  auto eval = [](const ihw::IhwConfig& c) {
    switch (c.mul_mode) {
      case ihw::MulMode::ImpreciseSimple: return 0.5;
      case ihw::MulMode::MitchellFull: return 0.9;
      default: return 1.0;
    }
  };
  auto start = ihw::IhwConfig::mul_only(ihw::MulMode::ImpreciseSimple, 0);
  const auto res = tune(eval, 0.85, start);
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.config.mul_mode, ihw::MulMode::MitchellFull);
}

TEST(Tuner, FallsBackToPreciseWhenOnlyPrecisePasses) {
  auto eval = [](const ihw::IhwConfig& c) {
    return c.any_enabled() ? 0.2 : 1.0;
  };
  const auto res = tune(eval, 0.99, ihw::IhwConfig::all_imprecise());
  EXPECT_TRUE(res.satisfied);
  EXPECT_FALSE(res.config.any_enabled());
}

TEST(Tuner, ReportsUnsatisfiableConstraint) {
  auto eval = [](const ihw::IhwConfig&) { return 0.1; };
  const auto res = tune(eval, 0.99, ihw::IhwConfig::all_imprecise());
  EXPECT_FALSE(res.satisfied);
  EXPECT_FALSE(res.config.any_enabled());  // ended at precise
  EXPECT_GE(res.history.size(), 2u);
}

TEST(Tuner, AdderThresholdRelaxedBeforeDisable) {
  // Quality depends only on TH: passing needs TH >= 16.
  auto eval = [](const ihw::IhwConfig& c) {
    if (!c.add_enabled) return 1.0;
    return c.add_th >= 16 ? 0.95 : 0.5;
  };
  ihw::IhwConfig start;
  start.add_enabled = true;
  start.add_th = 8;
  const auto res = tune(eval, 0.9, start);
  EXPECT_TRUE(res.satisfied);
  EXPECT_TRUE(res.config.add_enabled);  // kept, with a larger threshold
  EXPECT_GE(res.config.add_th, 16);
}

TEST(Tuner, HistoryIsMonotonicallyLessAggressive) {
  const auto res = tune(synthetic_quality, 0.97, ihw::IhwConfig::all_imprecise());
  // Each step disables knobs, so synthetic quality never decreases.
  for (std::size_t i = 1; i < res.history.size(); ++i)
    EXPECT_GE(res.history[i].quality + 1e-12, res.history[i - 1].quality);
}

TEST(Tuner, HistoryNeverRepeatsAConfiguration) {
  // The duplicate-evaluation guarantee: no two history steps may carry an
  // equal IhwConfig, for any constraint (including unsatisfiable ones that
  // walk the whole ladder plus the precise fallback).
  const ihw::IhwConfig starts[] = {
      ihw::IhwConfig::all_imprecise(),
      ihw::IhwConfig::mul_only(ihw::MulMode::ImpreciseSimple, 0),
      ihw::IhwConfig::precise(),
  };
  for (const auto& start : starts) {
    for (const double constraint : {0.05, 0.8, 0.97, 2.0}) {
      const auto res = tune(synthetic_quality, constraint, start);
      for (std::size_t i = 0; i < res.history.size(); ++i)
        for (std::size_t j = i + 1; j < res.history.size(); ++j)
          EXPECT_FALSE(res.history[i].config == res.history[j].config)
              << "duplicate config at steps " << i << " and " << j
              << " (constraint " << constraint << ")";
    }
  }
}

TEST(Tuner, BackoffCandidatesAreUniqueAndStartAtTheStart) {
  const auto start = ihw::IhwConfig::all_imprecise();
  const auto cands = backoff_candidates(start);
  ASSERT_FALSE(cands.empty());
  EXPECT_TRUE(cands.front() == start);
  EXPECT_FALSE(cands.back().any_enabled());  // ladder ends fully precise
  for (std::size_t i = 0; i < cands.size(); ++i)
    for (std::size_t j = i + 1; j < cands.size(); ++j)
      EXPECT_FALSE(cands[i] == cands[j]);
}

void expect_results_identical(const TuneResult& a, const TuneResult& b) {
  EXPECT_TRUE(a.config == b.config);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.satisfied, b.satisfied);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_TRUE(a.history[i].config == b.history[i].config);
    EXPECT_DOUBLE_EQ(a.history[i].quality, b.history[i].quality);
    EXPECT_EQ(a.history[i].met_constraint, b.history[i].met_constraint);
  }
}

TEST(TunerSpeculative, MatchesSequentialForEveryConstraint) {
  // The speculative variant must return the exact TuneResult of the
  // sequential walk: same final config, same history prefix. Sweep the
  // constraint through every interesting region (first-step pass, ladder
  // stops, precise fallback, unsatisfiable).
  for (const double constraint :
       {0.05, 0.5, 0.65, 0.8, 0.9, 0.97, 0.99, 1.0, 2.0}) {
    const auto seq =
        tune(synthetic_quality, constraint, ihw::IhwConfig::all_imprecise());
    const auto spec = tune_speculative(synthetic_quality, constraint,
                                       ihw::IhwConfig::all_imprecise());
    expect_results_identical(seq, spec);
  }
}

TEST(TunerSpeculative, MatchesSequentialWithFaultModel) {
  const auto faults = fault::FaultConfig::uniform(1e-4, 99);
  fault::GuardPolicy guard;
  guard.enabled = true;
  for (const double constraint : {0.5, 0.9, 2.0}) {
    const auto seq = tune(synthetic_quality, constraint,
                          ihw::IhwConfig::all_imprecise(), faults, guard);
    const auto spec =
        tune_speculative(synthetic_quality, constraint,
                         ihw::IhwConfig::all_imprecise(), faults, guard);
    expect_results_identical(seq, spec);
    // The fault descriptors ride along through every history step.
    for (const auto& step : seq.history) {
      if (step.config.any_enabled())
        EXPECT_TRUE(step.config.faults == faults);
    }
  }
}

TEST(TunerSpeculative, ThreadCountInvariant) {
  const auto one = tune_speculative(synthetic_quality, 0.9,
                                    ihw::IhwConfig::all_imprecise(), 1);
  const auto four = tune_speculative(synthetic_quality, 0.9,
                                     ihw::IhwConfig::all_imprecise(), 4);
  expect_results_identical(one, four);
}

}  // namespace
}  // namespace ihw::quality
