// Tests for the error metrics and PMF characterization framework (Ch. 4.2).
#include "error/characterize.h"
#include "error/metrics.h"
#include "error/pmf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ihw::error {
namespace {

TEST(ErrorStats, AccumulatesAllMetrics) {
  ErrorStats s;
  s.observe(10.0, 10.0);   // no error
  s.observe(10.0, 11.0);   // rel 0.1, abs 1
  s.observe(-4.0, -3.0);   // rel 0.25, abs 1
  s.observe(2.0, 2.0);     // no error
  EXPECT_EQ(s.samples(), 4u);
  EXPECT_EQ(s.errors(), 2u);
  EXPECT_DOUBLE_EQ(s.error_rate(), 0.5);
  EXPECT_DOUBLE_EQ(s.max_rel(), 0.25);
  EXPECT_DOUBLE_EQ(s.mean_rel(), (0.1 + 0.25) / 4.0);
  EXPECT_DOUBLE_EQ(s.med(), 0.5);
  EXPECT_DOUBLE_EQ(s.wed(), 1.0);
}

TEST(ErrorStats, IgnoresNanPairsAndZeroExact) {
  ErrorStats s;
  s.observe(std::nan(""), 1.0);
  s.observe(0.0, 5.0);  // abs error counted, rel skipped
  EXPECT_EQ(s.samples(), 2u);
  EXPECT_DOUBLE_EQ(s.max_rel(), 0.0);
  EXPECT_DOUBLE_EQ(s.wed(), 5.0);
}

TEST(ErrorPmf, BucketsOnCeilLog2OfPercent) {
  ErrorPmf pmf;
  // err% = 3 -> ceil(log2 3) = 2.
  pmf.observe_rel_error(0.03);
  EXPECT_DOUBLE_EQ(pmf.probability(2), 1.0);
  // err% = 4 -> exactly bucket 2 (ceil(2) = 2).
  pmf.observe_rel_error(0.04);
  EXPECT_DOUBLE_EQ(pmf.probability(2), 1.0);
  // err% = 4.01 -> bucket 3.
  pmf.observe_rel_error(0.0401);
  EXPECT_NEAR(pmf.probability(3), 1.0 / 3.0, 1e-12);
}

TEST(ErrorPmf, ZeroErrorsCountTowardRateDenominator) {
  ErrorPmf pmf;
  pmf.observe_rel_error(0.0);
  pmf.observe_rel_error(0.0);
  pmf.observe_rel_error(0.01);
  EXPECT_EQ(pmf.samples(), 3u);
  EXPECT_NEAR(pmf.error_rate(), 1.0 / 3.0, 1e-12);
}

TEST(ErrorPmf, MassEqualsErrorRate) {
  ErrorPmf pmf;
  for (int i = 1; i <= 1000; ++i) pmf.observe_rel_error(i * 1e-5);
  for (int i = 0; i < 500; ++i) pmf.observe_rel_error(0.0);
  double mass = 0.0;
  for (int b = pmf.min_bucket(); b <= pmf.max_bucket(); ++b)
    mass += pmf.probability(b);
  EXPECT_NEAR(mass, pmf.error_rate(), 1e-12);
}

TEST(ErrorPmf, ClampsOutOfRangeBuckets) {
  ErrorPmf pmf(-4, 4);
  pmf.observe_rel_error(1e-12);  // far below min bucket
  pmf.observe_rel_error(1e6);    // far above max bucket
  EXPECT_DOUBLE_EQ(pmf.probability(-4), 0.5);
  EXPECT_DOUBLE_EQ(pmf.probability(4), 0.5);
  EXPECT_EQ(pmf.max_nonzero_bucket(), 4);
}

TEST(ErrorPmf, ToStringListsNonEmptyBuckets) {
  ErrorPmf pmf;
  pmf.observe_rel_error(0.03);
  const auto s = pmf.to_string("unit");
  EXPECT_NE(s.find("unit"), std::string::npos);
  EXPECT_NE(s.find("2^2%"), std::string::npos);
}

TEST(Characterize, UnitBoundsRespectTheory) {
  // Characterization results must stay under the Table 1 analytic bounds.
  struct Case {
    UnitKind kind;
    int param;
    double bound;
  };
  const Case cases[] = {
      {UnitKind::Rcp, 0, 0.0591}, {UnitKind::Rsqrt, 0, 0.1112},
      {UnitKind::Sqrt, 0, 0.1112}, {UnitKind::FpMul, 0, 0.2501},
      {UnitKind::AcfpLog, 0, 0.11112}, {UnitKind::AcfpFull, 0, 0.0206},
      {UnitKind::FpAdd, 8, 0.0079},
  };
  for (const auto& c : cases) {
    const auto res = characterize32(c.kind, c.param, 200000);
    EXPECT_LE(res.stats.max_rel(), c.bound) << res.label;
    EXPECT_GT(res.stats.max_rel(), 0.0) << res.label;
    EXPECT_EQ(res.pmf.samples(), 200000u);
  }
}

TEST(Characterize, SixtyFourBitVariantsWork) {
  const auto res = characterize64(UnitKind::AcfpFull, 0, 100000);
  EXPECT_LE(res.stats.max_rel(), 0.0206);
  const auto res2 = characterize64(UnitKind::AcfpLog, 48, 100000);
  EXPECT_LE(res2.stats.max_rel(), 0.20);
  EXPECT_GT(res2.stats.max_rel(), 0.12);
}

TEST(Characterize, TruncationShiftsPmfRight) {
  const auto a = characterize32(UnitKind::AcfpLog, 0, 150000);
  const auto b = characterize32(UnitKind::AcfpLog, 19, 150000);
  EXPECT_GE(b.pmf.max_nonzero_bucket(), a.pmf.max_nonzero_bucket());
  EXPECT_GT(b.stats.mean_rel(), a.stats.mean_rel());
}

TEST(Characterize, CustomDriverMatchesDirectComputation) {
  int calls = 0;
  const auto res = characterize_custom(
      "halving", 1000,
      [&](double* a, double* b) {
        *a = 1.0 + (calls++ % 100) * 0.01;
        *b = 2.0;
      },
      [](double a, double b) { return a * b * 0.95; },
      [](double a, double b) { return a * b; });
  EXPECT_EQ(res.stats.samples(), 1000u);
  EXPECT_NEAR(res.stats.max_rel(), 0.05, 1e-9);
  EXPECT_NEAR(res.stats.mean_rel(), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(res.stats.error_rate(), 1.0);
}

TEST(Characterize, LabelsIncludeParameters) {
  EXPECT_EQ(characterize32(UnitKind::AcfpLog, 19, 10).label, "log_path(19)");
  EXPECT_EQ(characterize32(UnitKind::Rcp, 0, 10).label, "ircp");
}

}  // namespace
}  // namespace ihw::error
