// Tests for daemon survivability (DESIGN.md §14): bounded wire reads and
// typed bad-frame diagnoses, server-side deadlines / dead-connection reaping
// / idle timeouts, the ResilientClient retry state machine (deterministic
// backoff, retryable-vs-fatal classification, circuit breaker, reconnect,
// degrade-to-local byte-identity), and the deterministic chaos harness with
// its invariant: every injected fault yields a retried-and-correct answer or
// a clean typed error -- never a wrong answer and never a hang.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/ray.h"
#include "apps/runner.h"
#include "gpu/simreal.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/resilient_client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve/workloads.h"
#include "sweep/cache.h"
#include "sweep/sweep.h"

namespace ihw::serve {
namespace {

std::string test_socket(const char* name) {
  return std::string("/tmp/ihw_res_") + std::to_string(::getpid()) + "_" +
         name + ".sock";
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_u32_header(int fd, std::uint32_t len) {
  const unsigned char hdr[] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
}

std::string record_text(const PointResult& r) {
  return sweep::EvalCache::serialize(r.fp, r.rec);
}

struct ServerFixture {
  explicit ServerFixture(const char* name, int workers = 2,
                         int queue_limit = 64, int idle_timeout_ms = 0) {
    ServerOptions opts;
    opts.socket_path = test_socket(name);
    opts.workers = workers;
    opts.queue_limit = queue_limit;
    opts.idle_timeout_ms = idle_timeout_ms;
    server = std::make_unique<Server>(opts);
    std::string err;
    if (!server->start(&err)) ADD_FAILURE() << err;
  }
  ~ServerFixture() { server->stop(); }
  Client connect() {
    Client c;
    std::string err;
    if (!c.connect(server->socket_path(), &err)) ADD_FAILURE() << err;
    return c;
  }
  std::unique_ptr<Server> server;
};

// --------------------------------------------------------------- backoff

TEST(Backoff, ScheduleIsDeterministicAndSeedDecorrelated) {
  RetryPolicy p;
  p.seed = 42;
  ResilientClient a(test_socket("na"), p), b(test_socket("nb"), p);
  for (std::uint64_t op = 0; op < 8; ++op)
    for (int attempt = 1; attempt <= 6; ++attempt)
      EXPECT_EQ(a.backoff_ms(op, attempt), b.backoff_ms(op, attempt))
          << "op=" << op << " attempt=" << attempt;

  RetryPolicy q = p;
  q.seed = 43;
  ResilientClient c(test_socket("nc"), q);
  int differing = 0;
  for (std::uint64_t op = 0; op < 8; ++op)
    for (int attempt = 1; attempt <= 6; ++attempt)
      if (a.backoff_ms(op, attempt) != c.backoff_ms(op, attempt)) ++differing;
  EXPECT_GT(differing, 0) << "distinct seeds must decorrelate the schedule";
}

TEST(Backoff, ExponentialGrowthCapAndJitterBounds) {
  RetryPolicy p;
  p.backoff_base_ms = 10.0;
  p.backoff_max_ms = 100.0;
  ResilientClient c(test_socket("nd"), p);
  for (std::uint64_t op = 0; op < 16; ++op) {
    for (int attempt = 1; attempt <= 8; ++attempt) {
      double base = 10.0;
      for (int k = 1; k < attempt && base < 100.0; ++k) base *= 2.0;
      if (base > 100.0) base = 100.0;
      const double ms = c.backoff_ms(op, attempt);
      EXPECT_GE(ms, 0.5 * base) << "attempt=" << attempt;
      EXPECT_LE(ms, base) << "attempt=" << attempt;
    }
    // Deep attempts saturate at the cap (scaled by jitter), never beyond.
    EXPECT_LE(c.backoff_ms(op, 30), 100.0);
    EXPECT_GE(c.backoff_ms(op, 30), 50.0);
  }
}

// ------------------------------------------------------------------ wire

TEST(WireTimeout, SilentPeerSurfacesAsTimeout) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string got;
  EXPECT_EQ(read_frame(sv[1], &got, {}, /*timeout_ms=*/60), WireStatus::Timeout);
  // A partial frame within the window is still a timeout, not Malformed:
  // the bytes may yet arrive; only the clock ran out.
  const char two[] = {0, 0};
  ASSERT_EQ(::send(sv[0], two, 2, 0), 2);
  EXPECT_EQ(read_frame(sv[1], &got, {}, 60), WireStatus::Timeout);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WireTimeout, OversizedDetailNamesLengthAndCap) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  send_u32_header(sv[0], kMaxFrameBytes + 1);
  std::string got, detail;
  FrameFault fault = FrameFault::None;
  EXPECT_EQ(read_frame(sv[1], &got, {}, -1, &detail, &fault),
            WireStatus::Malformed);
  EXPECT_EQ(fault, FrameFault::Oversized);
  EXPECT_NE(detail.find(std::to_string(kMaxFrameBytes + 1)),
            std::string::npos)
      << detail;
  EXPECT_NE(detail.find("16 MiB"), std::string::npos) << detail;
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WireTimeout, FaultKindsClassifyTornAndZeroFrames) {
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const char two[] = {0, 0};
    ASSERT_EQ(::send(sv[0], two, 2, 0), 2);
    ::close(sv[0]);
    std::string got;
    FrameFault fault = FrameFault::None;
    EXPECT_EQ(read_frame(sv[1], &got, {}, -1, nullptr, &fault),
              WireStatus::Malformed);
    EXPECT_EQ(fault, FrameFault::TornPrefix);
    ::close(sv[1]);
  }
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    send_u32_header(sv[0], 0);
    std::string got;
    FrameFault fault = FrameFault::None;
    EXPECT_EQ(read_frame(sv[1], &got, {}, -1, nullptr, &fault),
              WireStatus::Malformed);
    EXPECT_EQ(fault, FrameFault::ZeroLength);
    ::close(sv[0]);
    ::close(sv[1]);
  }
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    send_u32_header(sv[0], 10);
    ASSERT_EQ(::send(sv[0], "abc", 3, 0), 3);
    ::close(sv[0]);
    std::string got;
    FrameFault fault = FrameFault::None;
    EXPECT_EQ(read_frame(sv[1], &got, {}, -1, nullptr, &fault),
              WireStatus::Malformed);
    EXPECT_EQ(fault, FrameFault::TornPayload);
    ::close(sv[1]);
  }
}

// ---------------------------------------------------------------- client

TEST(ClientTimeout, SilentDaemonIsRetryableTimeoutNotAHang) {
  // A listener that accepts the backlog but never answers: pre-PR-7 the
  // client blocked forever here.
  const std::string path = test_socket("silent");
  ::unlink(path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  ASSERT_EQ(::bind(lfd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);

  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(path, &err, /*timeout_ms=*/1000)) << err;
  c.set_read_timeout_ms(80);
  try {
    c.call(sweep::Json::object().set("op", "ping"));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "timeout");
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_FALSE(c.connected());  // the stream can no longer be trusted
  ::close(lfd);
  ::unlink(path.c_str());
}

TEST(ClientTimeout, OversizedRequestIsClientSideFatal) {
  Client c;  // never connects: the cap check fires before any socket I/O
  std::string big(kMaxFrameBytes + 64, 'x');
  try {
    c.call(sweep::Json::object().set("op", "ping").set("pad", big));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_FALSE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("16 MiB"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------- server

TEST(ServerSurvive, OversizedFrameGetsFatalTypedBadFrame) {
  ServerFixture f("oversz");
  const int fd = raw_connect(f.server->socket_path());
  ASSERT_GE(fd, 0);
  send_u32_header(fd, kMaxFrameBytes + 7);
  std::string resp;
  ASSERT_EQ(read_frame(fd, &resp, {}, 2000), WireStatus::Ok);
  sweep::Json doc;
  ASSERT_TRUE(sweep::Json::parse(resp, &doc));
  EXPECT_FALSE(doc["ok"].as_bool(true));
  EXPECT_EQ(doc["code"].as_str(), "bad_frame");
  EXPECT_FALSE(doc["retryable"].as_bool(true));  // oversize is fatal
  EXPECT_NE(doc["error"].as_str().find("16 MiB"), std::string::npos)
      << doc.dump();
  // The server then hangs up.
  EXPECT_EQ(read_frame(fd, &resp, {}, 2000), WireStatus::Closed);
  ::close(fd);
  const sweep::Json m = f.connect().metrics();
  EXPECT_GE(m["server"]["bad_frames"].as_u64(), 1u);
}

TEST(ServerSurvive, TornPayloadGetsRetryableTypedBadFrame) {
  ServerFixture f("torn");
  const int fd = raw_connect(f.server->socket_path());
  ASSERT_GE(fd, 0);
  send_u32_header(fd, 10);
  ASSERT_EQ(::send(fd, "abc", 3, MSG_NOSIGNAL), 3);
  ::shutdown(fd, SHUT_WR);  // EOF mid-payload, but we can still read
  std::string resp;
  ASSERT_EQ(read_frame(fd, &resp, {}, 2000), WireStatus::Ok);
  sweep::Json doc;
  ASSERT_TRUE(sweep::Json::parse(resp, &doc));
  EXPECT_EQ(doc["code"].as_str(), "bad_frame");
  EXPECT_TRUE(doc["retryable"].as_bool(false));  // torn frames retry cleanly
  ::close(fd);
}

TEST(ServerSurvive, QueuedRequestPastDeadlineIsRefusedTyped) {
  ServerFixture f("deadline", /*workers=*/1);
  std::thread staller([&] {
    Client c;
    if (c.connect(f.server->socket_path())) {
      try {
        c.stall(400);
      } catch (const ServeError&) {
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Client c = f.connect();
  try {
    // 1 ms of patience behind a 400 ms stall: expired long before dequeue.
    c.characterize({{error::UnitKind::BitTrunc, 3, 2000}}, false,
                   /*deadline_ms=*/1);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "deadline_exceeded");
    EXPECT_TRUE(e.retryable());
  }
  staller.join();
  const sweep::Json m = f.connect().metrics();
  EXPECT_GE(m["server"]["deadline_expired"].as_u64(), 1u);
}

TEST(ServerSurvive, DeadlineLapsedMidEvaluationStillServes) {
  ServerFixture f("lapsed");
  Client c = f.connect();
  // Alive at dequeue (idle server), lapses during the 150 ms stall: the
  // soft-deadline pattern flags it but serves the finished answer.
  const sweep::Json resp = c.call_checked(sweep::Json::object()
                                              .set("op", "stall")
                                              .set("ms", 150)
                                              .set("deadline_ms", 30));
  EXPECT_TRUE(resp["ok"].as_bool(false));
  const sweep::Json m = c.metrics();
  EXPECT_GE(m["server"]["deadline_lapsed"].as_u64(), 1u);
  EXPECT_EQ(m["server"]["deadline_expired"].as_u64(), 0u);
}

TEST(ServerSurvive, DeadConnectionQueueIsReaped) {
  ServerFixture f("reap", /*workers=*/1, /*queue_limit=*/8);
  std::thread staller([&] {
    Client c;
    if (c.connect(f.server->socket_path())) {
      try {
        c.stall(600);
      } catch (const ServeError&) {
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Pipeline three stalls on a raw connection, then vanish without waiting:
  // the single executor is busy, so all three sit queued when EOF lands.
  const int fd = raw_connect(f.server->socket_path());
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i) {
    const std::string req =
        sweep::Json::object().set("op", "stall").set("ms", 50).dump();
    ASSERT_TRUE(write_frame(fd, req));
  }
  ::close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Reaped while the staller still holds the executor: the queue budget is
  // already free and nothing will evaluate into the void.
  const sweep::Json m = f.connect().metrics();
  EXPECT_EQ(m["server"]["reaped"].as_u64(), 3u);
  staller.join();
}

TEST(ServerSurvive, IdleConnectionsAreClosedBusyOnesKept) {
  ServerFixture f("idle", /*workers=*/2, /*queue_limit=*/64,
                  /*idle_timeout_ms=*/120);
  // A connection with work in flight outlives the idle timer...
  Client busy = f.connect();
  busy.stall(400);  // 400 ms > 3 idle periods, yet the answer arrives
  // ...while a silent one is reaped.
  const int fd = raw_connect(f.server->socket_path());
  ASSERT_GE(fd, 0);
  std::string got;
  EXPECT_EQ(read_frame(fd, &got, {}, 3000), WireStatus::Closed);
  ::close(fd);
  const sweep::Json m = f.connect().metrics();
  EXPECT_GE(m["server"]["idle_closed"].as_u64(), 1u);
}

// ------------------------------------------------------ resilient client

TEST(Resilient, RetryExhaustionRecordsBackoffScheduleAndThrows) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.connect_timeout_ms = 100;
  p.local_fallback = false;
  ResilientClient c(test_socket("nowhere"), p);
  std::vector<double> sleeps;
  c.set_sleep_fn([&](double ms) { sleeps.push_back(ms); });
  try {
    c.characterize({{error::UnitKind::BitTrunc, 3, 1000}}, false);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "retry_exhausted");
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("connect"), std::string::npos)
        << e.what();
  }
  ASSERT_EQ(sleeps.size(), 2u);  // attempts 2 and 3 back off first
  EXPECT_EQ(sleeps[0], c.backoff_ms(0, 1));
  EXPECT_EQ(sleeps[1], c.backoff_ms(0, 2));
  EXPECT_EQ(c.stats().operations, 1u);
  EXPECT_EQ(c.stats().attempts, 3u);
  EXPECT_EQ(c.stats().retries, 2u);
  EXPECT_EQ(c.stats().failures, 1u);
}

TEST(Resilient, FatalErrorPropagatesWithoutRetry) {
  ServerFixture f("fatal");
  RetryPolicy p;
  p.local_fallback = false;
  ResilientClient c(f.server->socket_path(), p);
  try {
    c.eval_workload({"no_such_app", {}, 0});
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_EQ(c.stats().attempts, 1u);  // fatal means exactly one try
  EXPECT_EQ(c.stats().retries, 0u);
}

TEST(Resilient, BreakerOpensFastFailsAndRecoversViaHalfOpenProbe) {
  const std::string path = test_socket("breaker");
  ::unlink(path.c_str());
  RetryPolicy p;
  p.max_attempts = 1;
  p.connect_timeout_ms = 100;
  p.breaker_threshold = 2;
  p.breaker_cooldown_ms = 1000.0;
  p.local_fallback = false;
  ResilientClient c(path, p);
  c.set_sleep_fn([](double) {});
  double now = 0.0;
  c.set_clock_fn([&] { return now; });

  auto expect_failure = [&](const char* code) {
    try {
      c.metrics();
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), code);
    }
  };
  expect_failure("retry_exhausted");  // failure 1 of 2
  EXPECT_EQ(c.breaker_state(), BreakerState::Closed);
  expect_failure("retry_exhausted");  // failure 2 trips the breaker
  EXPECT_EQ(c.breaker_state(), BreakerState::Open);
  EXPECT_EQ(c.stats().breaker_opens, 1u);

  const std::uint64_t attempts_when_open = c.stats().attempts;
  expect_failure("breaker_open");  // fast fail: no connect attempt
  EXPECT_EQ(c.stats().attempts, attempts_when_open);
  EXPECT_EQ(c.stats().breaker_fast_fails, 1u);

  now = 1500.0;  // past the cooldown: one half-open probe, daemon still dead
  expect_failure("retry_exhausted");
  EXPECT_EQ(c.breaker_state(), BreakerState::Open);
  EXPECT_EQ(c.stats().breaker_opens, 2u);

  // Daemon comes back; the next probe closes the breaker.
  ServerOptions opts;
  opts.socket_path = path;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  now = 3000.0;
  const sweep::Json m = c.metrics();
  EXPECT_TRUE(m["ok"].as_bool(false));
  EXPECT_EQ(c.breaker_state(), BreakerState::Closed);
  server.stop();
}

TEST(Resilient, ReconnectAfterDaemonRestartIsBitExact) {
  const std::string path = test_socket("restart");
  const std::vector<sweep::CharPoint> points = {
      {error::UnitKind::AcfpLog, 6, 3000}, {error::UnitKind::BitTrunc, 5, 3000}};
  RetryPolicy p;
  p.backoff_base_ms = 5.0;
  p.backoff_max_ms = 20.0;
  p.connect_timeout_ms = 1000;
  p.local_fallback = false;  // prove the daemon answered, not the fallback
  ResilientClient c(path, p);

  std::vector<std::string> before, after;
  {
    ServerOptions opts;
    opts.socket_path = path;
    Server a(opts);
    std::string err;
    ASSERT_TRUE(a.start(&err)) << err;
    for (const auto& r : c.characterize(points, false))
      before.push_back(record_text(r));
    a.stop();
  }
  {
    ServerOptions opts;
    opts.socket_path = path;
    Server b(opts);
    std::string err;
    ASSERT_TRUE(b.start(&err)) << err;
    // The held connection is dead; the client must notice, reconnect, and
    // get byte-identical records from the fresh daemon.
    for (const auto& r : c.characterize(points, false))
      after.push_back(record_text(r));
    b.stop();
  }
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "point " << i;
  EXPECT_GE(c.stats().reconnects, 1u);
}

TEST(Resilient, DegradeToLocalIsByteIdenticalToInProcess) {
  RetryPolicy p;
  p.max_attempts = 2;
  p.connect_timeout_ms = 100;
  ResilientClient c(test_socket("deadsock"), p);  // fallback on by default
  c.set_sleep_fn([](double) {});

  const std::vector<sweep::CharPoint> points = {
      {error::UnitKind::AcfpFull, 4, 3000}, {error::UnitKind::BitTrunc, 6, 3000}};
  const auto degraded = c.characterize(points, false);
  const auto local = sweep::characterize_grid32(points, nullptr);
  ASSERT_EQ(degraded.size(), local.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(degraded[i].source, "local");
    sweep::EvalRecord lrec;
    lrec.has_char = true;
    lrec.chr = local[i];
    EXPECT_EQ(record_text(degraded[i]),
              sweep::EvalCache::serialize(degraded[i].fp, lrec));
  }
  // Repeats hit the fallback cache, still byte-identical.
  const auto warm = c.characterize(points, false);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(warm[i].source, "local_cache");
    EXPECT_TRUE(warm[i].served_warm());
    EXPECT_EQ(record_text(warm[i]), record_text(degraded[i]));
  }
  EXPECT_EQ(c.stats().fallback_operations, 2u);
  EXPECT_EQ(c.stats().fallback_points, 4u);

  // Workload path too: the degraded record equals the direct in-process run.
  sweep::Workload w{"ray", {{"width", 32.0}, {"height", 24.0}}, 0};
  const auto res = c.eval_workload(w);
  EXPECT_EQ(res.source, "local");
  apps::RayParams rp;
  rp.width = 32;
  rp.height = 24;
  sweep::EvalRecord direct;
  direct.perf = apps::run_with_config(
      IhwConfig::precise(), [&] { apps::render_ray<gpu::SimFloat>(rp); });
  EXPECT_EQ(res.fp, workload_fingerprint(w));
  EXPECT_EQ(record_text(res), sweep::EvalCache::serialize(res.fp, direct));
}

// ----------------------------------------------------------------- chaos

TEST(Chaos, FaultScheduleIsPureDirectionalAndRateGated) {
  ChaosSpec off;
  off.rate = 0.0;
  ChaosSpec full;
  full.rate = 1.0;
  full.seed = 9;
  std::set<ChaosFault> seen_up, seen_down;
  for (std::uint64_t conn = 0; conn < 4; ++conn) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      EXPECT_EQ(chaos_fault_at(off, conn, 0, i), ChaosFault::None);
      EXPECT_EQ(chaos_fault_at(off, conn, 1, i), ChaosFault::None);
      const ChaosFault up = chaos_fault_at(full, conn, 0, i);
      const ChaosFault down = chaos_fault_at(full, conn, 1, i);
      EXPECT_NE(up, ChaosFault::None);    // rate 1: every frame faults
      EXPECT_NE(down, ChaosFault::None);
      EXPECT_NE(up, ChaosFault::Corrupt)  // requests are never corrupted
          << "conn=" << conn << " i=" << i;
      // Pure function: same arguments, same answer.
      EXPECT_EQ(chaos_fault_at(full, conn, 0, i), up);
      EXPECT_EQ(chaos_fault_at(full, conn, 1, i), down);
      seen_up.insert(up);
      seen_down.insert(down);
    }
  }
  // Both directions exercise their full fault menus.
  EXPECT_EQ(seen_up.size(), 3u);    // Delay, Truncate, Sever
  EXPECT_EQ(seen_down.size(), 4u);  // + Corrupt
}

TEST(Chaos, ProxyFuzzYieldsOnlyCorrectAnswersOrTypedErrors) {
  ServerFixture f("chaosup", /*workers=*/2);
  const std::vector<sweep::CharPoint> points = {
      {error::UnitKind::AcfpLog, 5, 2000},
      {error::UnitKind::AcfpFull, 9, 2000},
      {error::UnitKind::BitTrunc, 4, 2000},
      {error::UnitKind::BitTrunc, 11, 2000},
  };
  // The ground truth every surviving answer must match bit-for-bit.
  const auto local = sweep::characterize_grid32(points, nullptr);
  std::vector<std::string> truth;
  for (std::size_t i = 0; i < points.size(); ++i) {
    sweep::EvalRecord rec;
    rec.has_char = true;
    rec.chr = local[i];
    truth.push_back(sweep::EvalCache::serialize(
        sweep::char_fingerprint(points[i], false), rec));
  }

  std::uint64_t total_faults = 0;
  for (std::uint64_t seed : {3ull, 11ull}) {
    ChaosSpec spec;
    spec.seed = seed;
    spec.rate = 0.4;
    spec.delay_ms = 250;  // > the client read timeout: Delay == timeout
    ChaosProxy proxy(f.server->socket_path() + ".chaos" +
                         std::to_string(seed),
                     f.server->socket_path(), spec);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    RetryPolicy p;
    p.max_attempts = 8;
    p.backoff_base_ms = 2.0;
    p.backoff_max_ms = 20.0;
    p.seed = seed;
    p.connect_timeout_ms = 1000;
    p.read_timeout_ms = 120;
    p.breaker_threshold = 100;  // keep the breaker out of this test's way
    ResilientClient c(proxy.listen_path(), p);  // fallback on: the invariant
                                                // allows degraded answers too
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        try {
          const auto res = c.characterize({points[i]}, false);
          ASSERT_EQ(res.size(), 1u);
          // The invariant: a delivered answer is never wrong, whatever the
          // proxy did to the frames that carried it.
          EXPECT_EQ(record_text(res[0]), truth[i])
              << "seed=" << seed << " round=" << round << " point=" << i;
        } catch (const ServeError& e) {
          // Clean typed errors are the only acceptable alternative.
          EXPECT_FALSE(e.code().empty());
        }
      }
    }
    proxy.stop();
    total_faults += proxy.faults_injected();
  }
  // A chaos run that injected nothing proves nothing.
  EXPECT_GE(total_faults, 1u);
}

}  // namespace
}  // namespace ihw::serve
