// Batch <-> scalar bit-identity for the SoA fast path (DESIGN.md §10):
// every unit kernel across its parameter space, every dispatch config, the
// guarded/faulted screen, the context-level batch_* ops (values + counters),
// runtime::batch_apply across thread counts, and the batched app ports
// against their scalar SimReal references.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <cmath>
#include <random>
#include <vector>

#include "apps/cp.h"
#include "apps/hotspot.h"
#include "apps/srad.h"
#include "fault/guarded_dispatch.h"
#include "gpu/batch.h"
#include "gpu/context.h"
#include "gpu/simreal.h"
#include "ihw/batch.h"
#include "ihw/dispatch.h"
#include "runtime/parallel.h"

namespace ihw {
namespace {

using fault::FaultConfig;
using fault::GuardedDispatch;
using fault::UnitClass;
using gpu::FpContext;
using gpu::OpClass;
using gpu::ScopedContext;
using gpu::SimFloat;

template <typename T>
bool same_bits(T a, T b) {
  fp::BitsOf<T> x, y;
  std::memcpy(&x, &a, sizeof(T));
  std::memcpy(&y, &b, sizeof(T));
  return x == y;
}

/// Random bit patterns with every IEEE special class mixed in.
template <typename T>
std::vector<T> operands(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> v(n);
  const T specials[] = {T(0.0),
                        T(-0.0),
                        std::numeric_limits<T>::infinity(),
                        -std::numeric_limits<T>::infinity(),
                        std::numeric_limits<T>::quiet_NaN(),
                        std::numeric_limits<T>::denorm_min(),
                        -std::numeric_limits<T>::denorm_min(),
                        std::numeric_limits<T>::max(),
                        std::numeric_limits<T>::min(),
                        T(1.0),
                        T(-1.0),
                        T(1.5)};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 8 == 0) {
      v[i] = specials[rng() % (sizeof(specials) / sizeof(T))];
    } else {
      const auto bits = static_cast<fp::BitsOf<T>>(rng());
      std::memcpy(&v[i], &bits, sizeof(T));
    }
  }
  return v;
}

/// Positive operands in a numerically tame range (for SFU / guard paths).
template <typename T>
std::vector<T> positive_operands(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_int_distribution<int> expo(-6, 6);
  std::vector<T> v(n);
  for (auto& x : v)
    x = static_cast<T>(std::ldexp(mant(rng), expo(rng)));
  return v;
}

/// Bitwise equality, except any-NaN == any-NaN. The imprecise units emit a
/// canonical qNaN (strictly checked by the BatchUnits tests), but the
/// *precise* hardware path propagates whichever operand's payload lands in
/// the destination register -- x86 addss/addps payload selection follows
/// operand allocation, which differs between the out-of-line scalar call and
/// the inlined span loop. C++ does not pin this, so dispatch-level tests use
/// this comparator.
template <typename T>
bool same_value(T a, T b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return same_bits(a, b);
}

constexpr std::size_t kN = 20000;

// --- unit-kernel bit-identity ----------------------------------------------

template <typename T>
void expect_span_matches(const char* what, const std::vector<T>& got,
                         const std::vector<T>& want) {
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(same_bits(got[i], want[i]))
        << what << " diverges at " << i << ": got " << got[i] << " want "
        << want[i];
}

template <typename T>
void run_adder_sweep() {
  const auto a = operands<T>(kN, 1), b = operands<T>(kN, 2);
  std::vector<T> out(kN), ref(kN);
  for (int th : {1, 2, 4, 8, 12, 23, 27, 52, 56, 0, -3, 99}) {
    batch::ifp_add_n(a.data(), b.data(), out.data(), kN, th);
    for (std::size_t i = 0; i < kN; ++i) ref[i] = ifp_add(a[i], b[i], th);
    expect_span_matches("ifp_add_n", out, ref);
    batch::ifp_sub_n(a.data(), b.data(), out.data(), kN, th);
    for (std::size_t i = 0; i < kN; ++i) ref[i] = ifp_sub(a[i], b[i], th);
    expect_span_matches("ifp_sub_n", out, ref);
  }
}

TEST(BatchUnits, AdderThSweepFloat) { run_adder_sweep<float>(); }
TEST(BatchUnits, AdderThSweepDouble) { run_adder_sweep<double>(); }

template <typename T>
void run_mul_sweep() {
  const auto a = operands<T>(kN, 3), b = operands<T>(kN, 4);
  std::vector<T> out(kN), ref(kN);
  batch::ifp_mul_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = ifp_mul(a[i], b[i]);
  expect_span_matches("ifp_mul_n", out, ref);

  for (int tr : {0, 1, 8, 12, 23, 31, 52, 60, -2}) {
    for (AcfpPath path : {AcfpPath::Log, AcfpPath::Full}) {
      batch::acfp_mul_n(a.data(), b.data(), out.data(), kN, path, tr);
      for (std::size_t i = 0; i < kN; ++i)
        ref[i] = acfp_mul(a[i], b[i], path, tr);
      expect_span_matches("acfp_mul_n", out, ref);
    }
    batch::trunc_mul_n(a.data(), b.data(), out.data(), kN, tr);
    for (std::size_t i = 0; i < kN; ++i) ref[i] = trunc_mul(a[i], b[i], tr);
    expect_span_matches("trunc_mul_n", out, ref);
  }
}

TEST(BatchUnits, MulModesFloat) { run_mul_sweep<float>(); }
TEST(BatchUnits, MulModesDouble) { run_mul_sweep<double>(); }

template <typename T>
void run_sfu_sweep() {
  const auto a = operands<T>(kN, 5), b = operands<T>(kN, 6);
  std::vector<T> out(kN), ref(kN);
  batch::ircp_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = ircp(a[i]);
  expect_span_matches("ircp_n", out, ref);
  batch::irsqrt_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = irsqrt(a[i]);
  expect_span_matches("irsqrt_n", out, ref);
  batch::isqrt_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = isqrt(a[i]);
  expect_span_matches("isqrt_n", out, ref);
  batch::ilog2_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = ilog2(a[i]);
  expect_span_matches("ilog2_n", out, ref);
  batch::iexp2_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = iexp2(a[i]);
  expect_span_matches("iexp2_n", out, ref);
  batch::ifp_div_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = ifp_div(a[i], b[i]);
  expect_span_matches("ifp_div_n", out, ref);

  const auto c = operands<T>(kN, 7);
  for (int th : {4, 8, 23}) {
    batch::ifp_fma_n(a.data(), b.data(), c.data(), out.data(), kN, th);
    for (std::size_t i = 0; i < kN; ++i)
      ref[i] = ifp_fma(a[i], b[i], c[i], th);
    expect_span_matches("ifp_fma_n", out, ref);
  }
}

TEST(BatchUnits, SfuAndFmaFloat) { run_sfu_sweep<float>(); }
TEST(BatchUnits, SfuAndFmaDouble) { run_sfu_sweep<double>(); }

template <typename T>
void expect_span_matches_value(const char* what, const std::vector<T>& got,
                               const std::vector<T>& want) {
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(same_value(got[i], want[i]))
        << what << " diverges at " << i << ": got " << got[i] << " want "
        << want[i];
}

// --- dispatch-level bit-identity across configs ----------------------------

std::vector<IhwConfig> interesting_configs() {
  std::vector<IhwConfig> cfgs;
  cfgs.push_back(IhwConfig::precise());
  cfgs.push_back(IhwConfig::all_imprecise());
  for (MulMode m : {MulMode::ImpreciseSimple, MulMode::MitchellLog,
                    MulMode::MitchellFull, MulMode::BitTruncated})
    cfgs.push_back(IhwConfig::mul_only(m, 8));
  IhwConfig add_only;
  add_only.add_enabled = true;
  add_only.add_th = 4;
  cfgs.push_back(add_only);
  return cfgs;
}

template <typename T>
void run_dispatch_identity(const IhwConfig& cfg) {
  const FpDispatch d(cfg);
  const auto a = operands<T>(kN, 8), b = operands<T>(kN, 9),
             c = operands<T>(kN, 10);
  std::vector<T> out(kN), ref(kN);

  d.add_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.add(a[i], b[i]);
  expect_span_matches_value("add_n", out, ref);
  d.sub_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.sub(a[i], b[i]);
  expect_span_matches_value("sub_n", out, ref);
  d.mul_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.mul(a[i], b[i]);
  expect_span_matches_value("mul_n", out, ref);
  d.div_n(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.div(a[i], b[i]);
  expect_span_matches_value("div_n", out, ref);
  d.fma_n(a.data(), b.data(), c.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.fma(a[i], b[i], c[i]);
  expect_span_matches_value("fma_n", out, ref);
  d.rcp_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.rcp(a[i]);
  expect_span_matches_value("rcp_n", out, ref);
  d.rsqrt_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.rsqrt(a[i]);
  expect_span_matches_value("rsqrt_n", out, ref);
  d.sqrt_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.sqrt(a[i]);
  expect_span_matches_value("sqrt_n", out, ref);
  d.log2_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.log2(a[i]);
  expect_span_matches_value("log2_n", out, ref);
  d.exp2_n(a.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = d.exp2(a[i]);
  expect_span_matches_value("exp2_n", out, ref);
}

TEST(BatchDispatch, EveryConfigBitIdenticalFloat) {
  for (const auto& cfg : interesting_configs()) run_dispatch_identity<float>(cfg);
}
TEST(BatchDispatch, EveryConfigBitIdenticalDouble) {
  for (const auto& cfg : interesting_configs()) run_dispatch_identity<double>(cfg);
}

// --- guarded/faulted spans --------------------------------------------------

IhwConfig faulted_guarded_config() {
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = FaultConfig::uniform(0.05, 1234);
  cfg.guard.enabled = true;
  return cfg;
}

void expect_fault_counters_eq(const fault::FaultCounters& a,
                              const fault::FaultCounters& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.guard_trips, b.guard_trips);
  EXPECT_EQ(a.degraded_epochs, b.degraded_epochs);
  EXPECT_EQ(a.run_degradations, b.run_degradations);
  EXPECT_EQ(a.retried_epochs, b.retried_epochs);
}

TEST(BatchGuarded, ScreenedSpanMatchesScalarScreen) {
  const IhwConfig cfg = faulted_guarded_config();
  const auto a = positive_operands<float>(kN, 11),
             b = positive_operands<float>(kN, 12),
             c = positive_operands<float>(kN, 13);
  std::vector<float> out(kN), ref(kN);

  GuardedDispatch scalar(cfg), batched(cfg);
  // A multi-op "kernel": per element mul, add, fma, rcp. Span-at-a-time
  // execution assigns each class the same per-class (epoch, op index)
  // sequence as element-at-a-time execution, so fault draws and guard
  // decisions are identical (DESIGN.md §10).
  scalar.begin_epoch(3);
  std::vector<float> m1(kN), s1(kN), f1(kN), r1(kN);
  for (std::size_t i = 0; i < kN; ++i) m1[i] = scalar.mul(a[i], b[i]);
  for (std::size_t i = 0; i < kN; ++i) s1[i] = scalar.add(m1[i], c[i]);
  for (std::size_t i = 0; i < kN; ++i) f1[i] = scalar.fma(a[i], b[i], c[i]);
  for (std::size_t i = 0; i < kN; ++i) r1[i] = scalar.rcp(a[i]);
  scalar.end_launch();

  batched.begin_epoch(3);
  std::vector<float> m2(kN), s2(kN), f2(kN), r2(kN);
  batched.mul_n(a.data(), b.data(), m2.data(), kN);
  batched.add_n(m2.data(), c.data(), s2.data(), kN);
  batched.fma_n(a.data(), b.data(), c.data(), f2.data(), kN);
  batched.rcp_n(a.data(), r2.data(), kN);
  batched.end_launch();

  expect_span_matches("guarded mul", m2, m1);
  expect_span_matches("guarded add", s2, s1);
  expect_span_matches("guarded fma", f2, f1);
  expect_span_matches("guarded rcp", r2, r1);
  EXPECT_GT(scalar.counters().total_injected(), 0u);
  expect_fault_counters_eq(scalar.counters(), batched.counters());
}

// --- context-level batch ops: values and counters ---------------------------

TEST(BatchContext, ValuesAndCountersMatchSimRealLoop) {
  const IhwConfig cfg = IhwConfig::all_imprecise();
  const auto a = positive_operands<float>(kN, 14),
             b = positive_operands<float>(kN, 15);

  FpContext ref_ctx(cfg);
  std::vector<float> ref(kN);
  {
    ScopedContext active(ref_ctx);
    for (std::size_t i = 0; i < kN; ++i) {
      SimFloat acc = SimFloat(a[i]) * SimFloat(b[i]);
      acc += rcp(SimFloat(b[i]));
      acc -= SimFloat(2.0f);
      ref[i] = (acc * rsqrt(SimFloat(a[i]))).value();
    }
  }

  FpContext ctx(cfg);
  std::vector<float> out(kN), t0(kN);
  {
    ScopedContext active(ctx);
    gpu::batch_mul(a.data(), b.data(), out.data(), kN);
    gpu::batch_rcp(b.data(), t0.data(), kN);
    gpu::batch_add(out.data(), t0.data(), out.data(), kN);
    gpu::batch_sub_scalar(out.data(), 2.0f, out.data(), kN);
    gpu::batch_rsqrt(a.data(), t0.data(), kN);
    gpu::batch_mul(out.data(), t0.data(), out.data(), kN);
  }

  expect_span_matches("context pipeline", out, ref);
  EXPECT_EQ(ctx.counters().counts, ref_ctx.counters().counts);
  EXPECT_GT(ctx.counters()[OpClass::FMul], 0u);
}

TEST(BatchContext, NoContextFallbackIsPreciseAndUncounted) {
  const auto a = positive_operands<float>(kN, 16),
             b = positive_operands<float>(kN, 17);
  std::vector<float> out(kN);
  gpu::batch_mul(a.data(), b.data(), out.data(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_TRUE(same_bits(out[i], a[i] * b[i]));
}

// --- batch_apply: thread-count invariance under faults ----------------------

TEST(BatchApply, ThreadCountInvariantUnderFaultsAndGuard) {
  const IhwConfig cfg = faulted_guarded_config();
  const std::uint64_t n = 40000, chunk = 1024;
  const auto a = positive_operands<float>(static_cast<std::size_t>(n), 18),
             b = positive_operands<float>(static_cast<std::size_t>(n), 19);

  auto sweep = [&](int threads, std::vector<float>* out, FpContext* ctx) {
    ScopedContext active(*ctx);
    runtime::batch_apply(
        n, chunk,
        [&](std::uint64_t i0, std::uint64_t i1) {
          gpu::batch_mul(a.data() + i0, b.data() + i0, out->data() + i0,
                         static_cast<std::size_t>(i1 - i0));
          gpu::batch_add(a.data() + i0, out->data() + i0, out->data() + i0,
                         static_cast<std::size_t>(i1 - i0));
        },
        threads);
  };

  FpContext c1(cfg), c4(cfg);
  std::vector<float> o1(static_cast<std::size_t>(n)),
      o4(static_cast<std::size_t>(n));
  sweep(1, &o1, &c1);
  sweep(4, &o4, &c4);

  expect_span_matches("batch_apply", o4, o1);
  EXPECT_EQ(c1.counters().counts, c4.counters().counts);
  EXPECT_GT(c1.fault_counters().total_injected(), 0u);
  expect_fault_counters_eq(c1.fault_counters(), c4.fault_counters());
}

// --- app ports ---------------------------------------------------------------

template <typename Scalar, typename Batched>
void expect_app_identical(const IhwConfig& cfg, Scalar&& scalar,
                          Batched&& batched) {
  FpContext ref_ctx(cfg), ctx(cfg);
  common::GridF want, got;
  {
    ScopedContext active(ref_ctx);
    want = scalar();
  }
  {
    ScopedContext active(ctx);
    got = batched();
  }
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_TRUE(same_bits(want.data()[i], got.data()[i]))
        << "grid diverges at " << i;
  EXPECT_EQ(ctx.counters().counts, ref_ctx.counters().counts);
  expect_fault_counters_eq(ref_ctx.fault_counters(), ctx.fault_counters());
}

TEST(BatchApps, HotspotMatchesScalarSimReal) {
  apps::HotspotParams p;
  p.rows = 48;
  p.cols = 40;
  p.iterations = 3;
  p.steady_init = false;
  const auto input = apps::make_hotspot_input(p, 7);
  expect_app_identical(
      IhwConfig::all_imprecise(),
      [&] { return apps::run_hotspot<SimFloat>(p, input); },
      [&] { return apps::run_hotspot_batched(p, input); });
}

TEST(BatchApps, SradMatchesScalarSimReal) {
  apps::SradParams p;
  p.rows = 40;
  p.cols = 36;
  p.iterations = 2;
  const auto input = apps::make_srad_input(p, 11);
  expect_app_identical(
      IhwConfig::all_imprecise(),
      [&] { return apps::run_srad<SimFloat>(p, input.image); },
      [&] { return apps::run_srad_batched(p, input.image); });
}

TEST(BatchApps, CpMatchesScalarSimReal) {
  apps::CpParams p;
  p.grid = 24;
  p.natoms = 16;
  const auto atoms = apps::make_cp_atoms(p, 13);
  expect_app_identical(
      IhwConfig::all_imprecise(),
      [&] { return apps::run_cp<SimFloat>(p, atoms); },
      [&] { return apps::run_cp_batched(p, atoms); });
}

TEST(BatchApps, PreciseConfigAlsoIdentical) {
  apps::HotspotParams p;
  p.rows = 33;  // odd sizes exercise span edges
  p.cols = 31;
  p.iterations = 2;
  p.steady_init = false;
  const auto input = apps::make_hotspot_input(p, 21);
  expect_app_identical(
      IhwConfig::precise(),
      [&] { return apps::run_hotspot<SimFloat>(p, input); },
      [&] { return apps::run_hotspot_batched(p, input); });
}

TEST(BatchApps, ScreenedRunsDelegateToScalarPath) {
  apps::HotspotParams p;
  p.rows = 32;
  p.cols = 32;
  p.iterations = 2;
  p.steady_init = false;
  const auto input = apps::make_hotspot_input(p, 23);
  expect_app_identical(
      faulted_guarded_config(),
      [&] { return apps::run_hotspot<SimFloat>(p, input); },
      [&] { return apps::run_hotspot_batched(p, input); });
}

TEST(BatchApps, NoContextMatchesPlainFloat) {
  apps::CpParams p;
  p.grid = 16;
  p.natoms = 12;
  const auto atoms = apps::make_cp_atoms(p, 29);
  const auto want = apps::run_cp<float>(p, atoms);
  const auto got = apps::run_cp_batched(p, atoms);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_TRUE(same_bits(want.data()[i], got.data()[i]));
}

// --- SimReal compound assignments (single-lookup fast path) -----------------

TEST(SimRealCompound, MatchesBinaryOperatorAndCountsOnce) {
  const IhwConfig cfg = IhwConfig::all_imprecise();
  FpContext ctx(cfg);
  ScopedContext active(ctx);

  SimFloat x(1.375f), y(2.5f);
  SimFloat via_binary = x + y;
  const std::uint64_t adds_before = ctx.counters()[OpClass::FAdd];
  SimFloat via_compound = x;
  via_compound += y;
  EXPECT_EQ(ctx.counters()[OpClass::FAdd], adds_before + 1);
  EXPECT_TRUE(same_bits(via_compound.value(), via_binary.value()));

  SimFloat d = x;
  d -= y;
  EXPECT_TRUE(same_bits(d.value(), (x - y).value()));
  SimFloat m = x;
  m *= y;
  EXPECT_TRUE(same_bits(m.value(), (x * y).value()));
  SimFloat q = x;
  q /= y;
  EXPECT_TRUE(same_bits(q.value(), (x / y).value()));
}

}  // namespace
}  // namespace ihw
