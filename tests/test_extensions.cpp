// Tests for the future-work extensions the thesis sketches in Ch. 6:
// the iexp2 SFU, Mitchell-algorithm division, and mixed precise/imprecise
// execution (the "integrate a precise mode" direction, exercised through
// ScopedPrecise regions).
#include <gtest/gtest.h>

#include <cmath>

#include "arith/mitchell.h"
#include "common/rng.h"
#include "gpu/simreal.h"
#include "ihw/ihw.h"

namespace ihw {
namespace {

TEST(Iexp2, BoundedBySixPointOneFivePercent) {
  common::Xoshiro256 rng(2001);
  double max_rel = 0.0;
  for (int i = 0; i < 300000; ++i) {
    const float x = static_cast<float>(rng.uniform(-20.0, 20.0));
    const double exact = std::exp2(static_cast<double>(x));
    const double approx = iexp2(x);
    const double rel = std::fabs(approx - exact) / exact;
    ASSERT_LE(rel, 0.0616) << "x=" << x;
    max_rel = std::max(max_rel, rel);
  }
  // Worst case at fraction 1/ln2 - 1 ~ 0.4427: (1+f)/2^f - 1 ~ 6.148%.
  EXPECT_GT(max_rel, 0.060);
}

TEST(Iexp2, ExactAtIntegers) {
  for (int k = -20; k <= 20; ++k)
    EXPECT_EQ(iexp2(static_cast<float>(k)), std::ldexp(1.0f, k));
}

TEST(Iexp2, SpecialsAndSaturation) {
  EXPECT_TRUE(std::isnan(iexp2(std::nanf(""))));
  EXPECT_EQ(iexp2(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(iexp2(-std::numeric_limits<float>::infinity()), 0.0f);
  EXPECT_TRUE(std::isinf(iexp2(20000.0f)));
  EXPECT_EQ(iexp2(-20000.0f), 0.0f);
  EXPECT_EQ(iexp2(-300.0f), 0.0f);  // below float range -> flush
}

TEST(Iexp2, InverseOfIlog2WithinCompoundBound) {
  common::Xoshiro256 rng(2002);
  for (int i = 0; i < 100000; ++i) {
    const float x = static_cast<float>(rng.uniform(1.0, 1000.0));
    const float rt = iexp2(ilog2(x));
    // log residual <= 0.087 bits, exp error <= 6.15%: ~12% round-trip.
    ASSERT_NEAR(rt, x, 0.13 * x);
  }
}

TEST(Iexp2, DispatchRoutesByConfig) {
  IhwConfig cfg;
  EXPECT_EQ(FpDispatch{cfg}.exp2(1.3f), std::exp2(1.3f));
  cfg.exp2_enabled = true;
  EXPECT_EQ(FpDispatch{cfg}.exp2(1.3f), iexp2(1.3f));
  EXPECT_NE(cfg.describe().find("exp2"), std::string::npos);
}

TEST(MitchellDiv, ErrorBoundedForRandomOperands) {
  // Mitchell division error: 2^(x1-x2) vs piecewise-linear; relative error
  // bounded by ~12.5% (overestimate side of the antilog segment).
  common::Xoshiro256 rng(2003);
  double max_rel = 0.0;
  for (int i = 0; i < 300000; ++i) {
    const std::uint64_t a = (rng() >> 40) | 1;
    const std::uint64_t b = (rng() >> 44) | 1;
    const double exact = static_cast<double>(a) / static_cast<double>(b);
    const double approx =
        std::ldexp(static_cast<double>(arith::mitchell_div(a, b)),
                   -arith::kMaFracBits);
    const double rel = std::fabs(approx - exact) / exact;
    ASSERT_LE(rel, 0.126) << "a=" << a << " b=" << b;
    max_rel = std::max(max_rel, rel);
  }
  EXPECT_GT(max_rel, 0.10);
}

TEST(MitchellDiv, ExactForPowerOfTwoRatios) {
  for (int i = 0; i <= 20; ++i)
    for (int j = 0; j <= 20; ++j) {
      const double approx =
          std::ldexp(static_cast<double>(
                         arith::mitchell_div(1ull << i, 1ull << j)),
                     -arith::kMaFracBits);
      EXPECT_DOUBLE_EQ(approx, std::ldexp(1.0, i - j));
    }
}

TEST(MitchellDiv, EqualOperandsGiveOne) {
  common::Xoshiro256 rng(2004);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = (rng() >> 40) | 1;
    EXPECT_DOUBLE_EQ(
        std::ldexp(static_cast<double>(arith::mitchell_div(a, a)),
                   -arith::kMaFracBits),
        1.0);
  }
}

TEST(MitchellDiv, ZeroNumerator) {
  EXPECT_EQ(arith::mitchell_div(0, 123), 0u);
}

TEST(MixedPrecision, ScopedPreciseCarvesExactRegions) {
  // The "precise mode integrated into the multiplier" direction: a kernel
  // that computes its quality-critical prefix exactly and only the bulk
  // arithmetic imprecisely.
  gpu::FpContext ctx{IhwConfig::mul_only(MulMode::ImpreciseSimple, 0)};
  gpu::ScopedContext scope(ctx);
  const gpu::SimFloat a(1.75f), b(1.75f);

  gpu::SimFloat critical(0.0f), bulk(0.0f);
  {
    gpu::ScopedPrecise precise;
    critical = a * b;  // coordinates/pointers-style computation
  }
  bulk = a * b;
  EXPECT_EQ(critical.value(), 1.75f * 1.75f);
  EXPECT_EQ(bulk.value(), ifp_mul(1.75f, 1.75f));
  // Nested precise regions restore correctly.
  {
    gpu::ScopedPrecise p1;
    {
      gpu::ScopedPrecise p2;
      EXPECT_EQ((a * b).value(), 1.75f * 1.75f);
    }
    EXPECT_EQ((a * b).value(), 1.75f * 1.75f);
  }
  EXPECT_EQ((a * b).value(), ifp_mul(1.75f, 1.75f));
}

TEST(MixedPrecision, FractionOfPreciseWorkControlsQuality) {
  // Sweeping the precise fraction of a dot product: error decreases
  // monotonically (statistically) as more terms are computed exactly.
  common::Xoshiro256 rng(2005);
  std::vector<float> xs(512), ys(512);
  for (std::size_t i = 0; i < 512; ++i) {
    xs[i] = static_cast<float>(rng.uniform(0.5, 2.0));
    ys[i] = static_cast<float>(rng.uniform(0.5, 2.0));
  }
  double exact = 0.0;
  for (std::size_t i = 0; i < 512; ++i)
    exact += static_cast<double>(xs[i]) * ys[i];

  auto run = [&](int precise_every) {
    gpu::FpContext ctx{IhwConfig::mul_only(MulMode::ImpreciseSimple, 0)};
    gpu::ScopedContext scope(ctx);
    double acc = 0.0;  // accumulate host-side; the muls are under test
    for (std::size_t i = 0; i < 512; ++i) {
      gpu::SimFloat prod(0.0f);
      if (precise_every > 0 && i % static_cast<std::size_t>(precise_every) == 0) {
        gpu::ScopedPrecise p;
        prod = gpu::SimFloat(xs[i]) * gpu::SimFloat(ys[i]);
      } else {
        prod = gpu::SimFloat(xs[i]) * gpu::SimFloat(ys[i]);
      }
      acc += static_cast<double>(prod.value());
    }
    return std::fabs(acc - exact) / exact;
  };

  const double all_imprecise = run(0);
  const double half_precise = run(2);
  const double all_precise_err = run(1);
  EXPECT_LT(half_precise, all_imprecise);
  EXPECT_LT(all_precise_err, 1e-6);
}

}  // namespace
}  // namespace ihw
