// SIMD backend <-> scalar reference bit-identity (DESIGN.md §15): the
// dispatcher's detection/force/clamp semantics, exhaustive 16-bit-pattern
// cross-checks and randomized fuzz pinning every hand-vectorized kernel to
// the scalar reference loop (including NaN/Inf/signed-zero/subnormal
// operands and remainder-tail lanes), fault-injection op-index parity
// through GuardedDispatch::*_n per backend, and end-to-end app byte-identity
// across ISA levels and thread counts. Each non-scalar case skips cleanly on
// hosts that cannot execute its ISA, and the CTest suite re-runs this binary
// (and test_batch) under IHW_FORCE_ISA for every level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "apps/hotspot.h"
#include "fault/guarded_dispatch.h"
#include "gpu/context.h"
#include "ihw/batch.h"
#include "ihw/dispatch.h"
#include "ihw/simd/isa.h"
#include "runtime/parallel.h"

namespace ihw {
namespace {

using fault::FaultConfig;
using fault::GuardedDispatch;
using gpu::FpContext;
using gpu::ScopedContext;
using simd::IsaLevel;
using simd::ScopedIsa;

const IsaLevel kVectorLevels[] = {IsaLevel::kAvx2, IsaLevel::kAvx512};

bool same_bits(float a, float b) {
  std::uint32_t x, y;
  std::memcpy(&x, &a, sizeof(float));
  std::memcpy(&y, &b, sizeof(float));
  return x == y;
}

void expect_span_matches(const char* what, const char* isa,
                         const std::vector<float>& got,
                         const std::vector<float>& want,
                         const std::vector<float>& a,
                         const std::vector<float>& b) {
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(same_bits(got[i], want[i]))
        << what << " [" << isa << "] diverges at " << i << ": a=" << a[i]
        << " b=" << (i < b.size() ? b[i] : 0.0f) << " got " << got[i]
        << " want " << want[i] << " (bits got=" << fp::to_bits(got[i])
        << " want=" << fp::to_bits(want[i]) << ")";
}

/// Runs every dispatched float unit once per (a, b) operand set under
/// `level`, with forced-scalar reference runs of the same span wrappers.
/// Exercises the whole wrapper (clamping, keep-mask computation, dispatch)
/// rather than the lane in isolation.
void cross_check_units(IsaLevel level, const std::vector<float>& a,
                       const std::vector<float>& b) {
  const char* isa = simd::isa_name(level);
  const std::size_t n = a.size();
  std::vector<float> got(n), want(n);

  const auto check = [&](const char* what, auto&& run) {
    {
      ScopedIsa scalar(IsaLevel::kScalar);
      run(want.data());
    }
    {
      ScopedIsa forced(level);
      ASSERT_EQ(simd::isa_active(), level);
      run(got.data());
    }
    expect_span_matches(what, isa, got, want, a, b);
    if (::testing::Test::HasFatalFailure()) return;
  };

  for (int th : {1, 8, 23, 27}) {
    check("ifp_add_n", [&](float* out) {
      batch::ifp_add_n(a.data(), b.data(), out, n, th);
    });
    check("ifp_sub_n", [&](float* out) {
      batch::ifp_sub_n(a.data(), b.data(), out, n, th);
    });
  }
  check("ifp_mul_n",
        [&](float* out) { batch::ifp_mul_n(a.data(), b.data(), out, n); });
  for (int trunc : {0, 8, 16, 23}) {
    check("acfp_mul_n(log)", [&](float* out) {
      batch::acfp_mul_n(a.data(), b.data(), out, n, AcfpPath::Log, trunc);
    });
    check("trunc_mul_n", [&](float* out) {
      batch::trunc_mul_n(a.data(), b.data(), out, n, trunc);
    });
  }
  check("ircp_n", [&](float* out) { batch::ircp_n(a.data(), out, n); });
}

std::vector<float> from_bits_vec(const std::vector<std::uint32_t>& bits) {
  std::vector<float> v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    v[i] = fp::from_bits<float>(bits[i]);
  return v;
}

/// Random bit patterns with every IEEE special class mixed in (the
/// test_batch operand recipe).
std::vector<float> fuzz_operands(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<float> v(n);
  const float specials[] = {0.0f,
                            -0.0f,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::min(),
                            1.0f,
                            -1.0f,
                            1.5f};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 8 == 0) {
      v[i] = specials[rng() % (sizeof(specials) / sizeof(float))];
    } else {
      v[i] = fp::from_bits<float>(static_cast<std::uint32_t>(rng()));
    }
  }
  return v;
}

// --- dispatcher semantics ----------------------------------------------------

TEST(SimdDispatch, NamesAndParsing) {
  EXPECT_STREQ(simd::isa_name(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(IsaLevel::kAvx512), "avx512");
  EXPECT_STREQ(simd::isa_name(IsaLevel::kNeon), "neon");
  IsaLevel l = IsaLevel::kNeon;
  EXPECT_TRUE(simd::isa_parse("avx2", &l));
  EXPECT_EQ(l, IsaLevel::kAvx2);
  EXPECT_FALSE(simd::isa_parse("AVX2", &l));
  EXPECT_FALSE(simd::isa_parse("", &l));
  EXPECT_FALSE(simd::isa_parse(nullptr, &l));
  EXPECT_EQ(l, IsaLevel::kAvx2);  // untouched on failure
}

TEST(SimdDispatch, ActiveTableMatchesLevelAndScalarIsAllNull) {
  EXPECT_STREQ(simd::kernels().name, simd::isa_name(simd::isa_active()));
  ScopedIsa scalar(IsaLevel::kScalar);
  const simd::KernelTable& t = simd::kernels();
  EXPECT_STREQ(t.name, "scalar");
  EXPECT_EQ(t.ifp_add_f32, nullptr);
  EXPECT_EQ(t.ifp_mul_f32, nullptr);
  EXPECT_EQ(t.acfp_log_f32, nullptr);
  EXPECT_EQ(t.trunc_mul_f32, nullptr);
  EXPECT_EQ(t.ircp_f32, nullptr);
}

TEST(SimdDispatch, ForceClampsToSupportedAndRestores) {
  const IsaLevel before = simd::isa_active();
  // NEON is a stub: forcing it must land on scalar, never fault.
  EXPECT_EQ(simd::isa_force(IsaLevel::kNeon), IsaLevel::kScalar);
  // AVX-512 lands on itself, AVX2, or scalar depending on the host, and the
  // installed level is always executable.
  const IsaLevel got = simd::isa_force(IsaLevel::kAvx512);
  EXPECT_TRUE(simd::isa_supported(got));
  EXPECT_EQ(got, simd::isa_active());
  simd::isa_force(before);
  EXPECT_EQ(simd::isa_active(), before);
}

TEST(SimdDispatch, EnvForceIsHonored) {
  // When the CTest env variants set IHW_FORCE_ISA, first-use initialization
  // must have installed the clamped parse of it (clamping, not the raw
  // request: an avx512 force on an avx2-only host runs avx2).
  const char* env = std::getenv("IHW_FORCE_ISA");
  if (env == nullptr) GTEST_SKIP() << "IHW_FORCE_ISA not set";
  IsaLevel want = IsaLevel::kScalar;
  ASSERT_TRUE(simd::isa_parse(env, &want)) << "bad IHW_FORCE_ISA: " << env;
  if (!simd::isa_supported(want))
    EXPECT_LT(static_cast<int>(simd::isa_active()), static_cast<int>(want));
  else
    EXPECT_EQ(simd::isa_active(), want);
}

TEST(SimdDispatch, BestSupportedIsExecutableAndActiveByDefault) {
  EXPECT_TRUE(simd::isa_supported(simd::isa_best_supported()));
  EXPECT_FALSE(simd::isa_supported(IsaLevel::kNeon));
}

// --- exhaustive 16-bit-pattern cross-checks ----------------------------------

/// Every 16-bit pattern, twice: in the high half (all sign/exponent
/// combinations and upper-fraction bits -- every special class) and in the
/// low half with a mid-range exponent splice (low-fraction/tail-bit
/// behaviour). Pairings rotate so each a-class meets aligned, sign-flipped,
/// and distant-exponent partners.
void run_exhaustive(IsaLevel level) {
  if (!simd::isa_supported(level))
    GTEST_SKIP() << simd::isa_name(level) << " not supported on this host";
  constexpr std::size_t kN = 1u << 16;
  std::vector<std::uint32_t> hi(kN), lo(kN);
  for (std::size_t p = 0; p < kN; ++p) {
    hi[p] = static_cast<std::uint32_t>(p) << 16;
    lo[p] = 0x3F000000u | static_cast<std::uint32_t>(p);
  }
  const auto rotated = [](const std::vector<std::uint32_t>& v,
                          std::size_t by) {
    std::vector<std::uint32_t> r(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) r[i] = v[(i + by) % v.size()];
    return r;
  };
  for (std::size_t rot : {std::size_t{1}, std::size_t{0x8000},
                          std::size_t{257}}) {
    cross_check_units(level, from_bits_vec(hi), from_bits_vec(rotated(hi, rot)));
    if (::testing::Test::HasFatalFailure()) return;
    cross_check_units(level, from_bits_vec(lo), from_bits_vec(rotated(lo, rot)));
    if (::testing::Test::HasFatalFailure()) return;
    // High-half against low-half: large exponent gaps feed the adder's
    // vanishing-operand select and the multipliers' clamp windows.
    cross_check_units(level, from_bits_vec(hi), from_bits_vec(rotated(lo, rot)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SimdExhaustive, Avx2) { run_exhaustive(IsaLevel::kAvx2); }
TEST(SimdExhaustive, Avx512) { run_exhaustive(IsaLevel::kAvx512); }

// --- randomized fuzz (specials mixed in, every tail length) ------------------

void run_fuzz(IsaLevel level) {
  if (!simd::isa_supported(level))
    GTEST_SKIP() << simd::isa_name(level) << " not supported on this host";
  // Spans shorter than, equal to, and just off the vector width exercise the
  // remainder tails; the large spans exercise steady-state lanes.
  std::uint64_t seed = 1000 + 17 * static_cast<std::uint64_t>(level);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{15}, std::size_t{16},
                        std::size_t{17}, std::size_t{31}, std::size_t{33},
                        std::size_t{4096}, std::size_t{20011}}) {
    cross_check_units(level, fuzz_operands(n, seed), fuzz_operands(n, seed + 1));
    if (::testing::Test::HasFatalFailure()) return;
    seed += 2;
  }
}

TEST(SimdFuzz, Avx2) { run_fuzz(IsaLevel::kAvx2); }
TEST(SimdFuzz, Avx512) { run_fuzz(IsaLevel::kAvx512); }

// --- fault-injection op-index parity through GuardedDispatch -----------------

/// The screened guarded path runs the per-element scalar screen by design,
/// but the *unscreened* spans dispatch to the SIMD backends, and both paths
/// bump per-class op indices span-wise. Forcing different backends must
/// change neither the outputs nor a single fault counter.
void run_guarded_parity(IsaLevel level) {
  if (!simd::isa_supported(level))
    GTEST_SKIP() << simd::isa_name(level) << " not supported on this host";
  constexpr std::size_t kN = 20000;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_int_distribution<int> expo(-6, 6);
  std::vector<float> a(kN), b(kN), c(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<float>(std::ldexp(mant(rng), expo(rng)));
    b[i] = static_cast<float>(std::ldexp(mant(rng), expo(rng)));
    c[i] = static_cast<float>(std::ldexp(mant(rng), expo(rng)));
  }

  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = FaultConfig::uniform(0.05, 1234);
  cfg.guard.enabled = true;

  const auto run = [&](IsaLevel isa, std::vector<float>* m,
                       std::vector<float>* s, std::vector<float>* f,
                       std::vector<float>* r, fault::FaultCounters* counters) {
    ScopedIsa forced(isa);
    GuardedDispatch gd(cfg);
    gd.begin_epoch(3);
    gd.mul_n(a.data(), b.data(), m->data(), kN);
    gd.add_n(m->data(), c.data(), s->data(), kN);
    gd.fma_n(a.data(), b.data(), c.data(), f->data(), kN);
    gd.rcp_n(a.data(), r->data(), kN);
    gd.end_launch();
    *counters = gd.counters();
  };

  std::vector<float> m1(kN), s1(kN), f1(kN), r1(kN);
  std::vector<float> m2(kN), s2(kN), f2(kN), r2(kN);
  fault::FaultCounters c1, c2;
  run(IsaLevel::kScalar, &m1, &s1, &f1, &r1, &c1);
  run(level, &m2, &s2, &f2, &r2, &c2);

  const char* isa = simd::isa_name(level);
  expect_span_matches("guarded mul_n", isa, m2, m1, a, b);
  expect_span_matches("guarded add_n", isa, s2, s1, a, b);
  expect_span_matches("guarded fma_n", isa, f2, f1, a, b);
  expect_span_matches("guarded rcp_n", isa, r2, r1, a, b);
  EXPECT_GT(c1.total_injected(), 0u);
  EXPECT_EQ(c1.injected, c2.injected);
  EXPECT_EQ(c1.guard_trips, c2.guard_trips);
  EXPECT_EQ(c1.degraded_epochs, c2.degraded_epochs);
  EXPECT_EQ(c1.run_degradations, c2.run_degradations);
  EXPECT_EQ(c1.retried_epochs, c2.retried_epochs);
}

TEST(SimdGuarded, FaultParityAvx2) { run_guarded_parity(IsaLevel::kAvx2); }
TEST(SimdGuarded, FaultParityAvx512) { run_guarded_parity(IsaLevel::kAvx512); }

// --- end-to-end app byte-identity across ISA x threads -----------------------

TEST(SimdApps, HotspotIdenticalAcrossIsaAndThreads) {
  apps::HotspotParams p;
  p.rows = 48;
  p.cols = 40;
  p.iterations = 3;
  p.steady_init = false;
  const auto input = apps::make_hotspot_input(p, 7);
  const IhwConfig cfg = IhwConfig::all_imprecise();

  common::GridF ref;
  gpu::PerfCounters ref_counters;
  {
    ScopedIsa scalar(IsaLevel::kScalar);
    runtime::ScopedThreads one(1);
    FpContext ctx(cfg);
    ScopedContext active(ctx);
    ref = apps::run_hotspot_batched(p, input);
    ref_counters = ctx.counters();
  }

  for (IsaLevel level : kVectorLevels) {
    if (!simd::isa_supported(level)) continue;
    for (int threads : {1, 2, 4}) {
      ScopedIsa forced(level);
      runtime::ScopedThreads t(threads);
      FpContext ctx(cfg);
      common::GridF got;
      {
        ScopedContext active(ctx);
        got = apps::run_hotspot_batched(p, input);
      }
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_TRUE(same_bits(ref.data()[i], got.data()[i]))
            << "hotspot grid diverges at " << i << " under "
            << simd::isa_name(level) << " threads=" << threads;
      EXPECT_EQ(ctx.counters().counts, ref_counters.counts)
          << simd::isa_name(level) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ihw
