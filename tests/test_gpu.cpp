// Tests for the SIMT functional simulator: contexts, counters, the SimReal
// instrumented scalar, launches/barrier phases, timing, and the power
// breakdown model.
#include "common/image.h"
#include "gpu/context.h"
#include "gpu/counters.h"
#include "gpu/machine.h"
#include "gpu/simreal.h"
#include "gpu/simt.h"
#include "gpu/timing.h"
#include "gpu/wattch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ihw::gpu {
namespace {

TEST(PerfCounters, ClassTotalsAndConversion) {
  PerfCounters c;
  c.bump(OpClass::FAdd, 3);
  c.bump(OpClass::FMul, 2);
  c.bump(OpClass::FRcp, 5);
  c.bump(OpClass::IAdd, 7);
  c.bump(OpClass::Load, 4);
  c.bump(OpClass::Store, 1);
  EXPECT_EQ(c.fpu_ops(), 5u);
  EXPECT_EQ(c.sfu_ops(), 5u);
  EXPECT_EQ(c.int_ops(), 7u);
  EXPECT_EQ(c.mem_accesses(), 5u);
  EXPECT_EQ(c.mem_bytes(), 20u);
  EXPECT_EQ(c.instructions(), 22u);
  const auto ops = c.to_op_counts();
  EXPECT_EQ(ops[power::OpKind::FAdd], 3u);
  EXPECT_EQ(ops[power::OpKind::FRcp], 5u);
}

TEST(PerfCounters, AccumulateAndReset) {
  PerfCounters a, b;
  a.bump(OpClass::FMul, 10);
  b.bump(OpClass::FMul, 5);
  b.bump(OpClass::Load, 2);
  a += b;
  EXPECT_EQ(a[OpClass::FMul], 15u);
  EXPECT_EQ(a[OpClass::Load], 2u);
  a.reset();
  EXPECT_EQ(a.instructions(), 0u);
}

TEST(SimReal, NoContextMeansPreciseAndUncounted) {
  ASSERT_EQ(FpContext::current(), nullptr);
  const SimFloat a(1.75f), b(1.75f);
  EXPECT_EQ((a * b).value(), 1.75f * 1.75f);
  EXPECT_EQ((a + b).value(), 3.5f);
  EXPECT_EQ(sqrt(SimFloat(9.0f)).value(), 3.0f);
}

TEST(SimReal, ContextCountsEveryOperation) {
  FpContext ctx{IhwConfig::precise()};
  ScopedContext scope(ctx);
  SimFloat a(2.0f), b(3.0f);
  (void)(a + b);
  (void)(a - b);
  (void)(a * b);
  (void)(a / b);
  (void)sqrt(a);
  (void)rsqrt(a);
  (void)rcp(a);
  (void)log2(a);
  (void)fma_op(a, b, a);
  EXPECT_EQ(ctx.counters()[OpClass::FAdd], 2u);  // add + sub
  EXPECT_EQ(ctx.counters()[OpClass::FMul], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FDiv], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FSqrt], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FRsqrt], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FRcp], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FLog2], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FFma], 1u);
}

TEST(SimReal, RoutesThroughImpreciseConfig) {
  FpContext ctx{IhwConfig::all_imprecise()};
  ScopedContext scope(ctx);
  const SimFloat a(1.75f), b(1.75f);
  EXPECT_EQ((a * b).value(), ifp_mul(1.75f, 1.75f));
  EXPECT_EQ((SimFloat(1024.0f) + SimFloat(1.0f)).value(),
            ifp_add(1024.0f, 1.0f, 8));
  EXPECT_EQ(rcp(SimFloat(3.0f)).value(), ircp(3.0f));
}

TEST(SimReal, ComparisonAndUnaryOperators) {
  const SimFloat a(2.0f), b(3.0f);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == SimFloat(2.0f));
  EXPECT_TRUE(a != b);
  EXPECT_EQ((-a).value(), -2.0f);
  EXPECT_EQ(fabs(SimFloat(-5.0f)).value(), 5.0f);
  EXPECT_EQ(fmin(a, b).value(), 2.0f);
  EXPECT_EQ(fmax(a, b).value(), 3.0f);
}

TEST(SimReal, CompoundAssignmentCounts) {
  FpContext ctx{IhwConfig::precise()};
  ScopedContext scope(ctx);
  SimFloat a(1.0f);
  a += SimFloat(2.0f);
  a *= SimFloat(3.0f);
  EXPECT_EQ(a.value(), 9.0f);
  EXPECT_EQ(ctx.counters()[OpClass::FAdd], 1u);
  EXPECT_EQ(ctx.counters()[OpClass::FMul], 1u);
}

TEST(SimReal, DoubleVariantRoutesSixtyFourBitUnits) {
  FpContext ctx{IhwConfig::mul_only(ihw::MulMode::MitchellFull, 44)};
  ScopedContext scope(ctx);
  const SimDouble a(1.9), b(1.7);
  EXPECT_EQ((a * b).value(), acfp_mul(1.9, 1.7, AcfpPath::Full, 44));
  EXPECT_EQ((a + b).value(), 1.9 + 1.7);  // adds stay precise
}

TEST(ScopedContext, NestsAndRestores) {
  FpContext outer{IhwConfig::precise()};
  FpContext inner{IhwConfig::all_imprecise()};
  EXPECT_EQ(FpContext::current(), nullptr);
  {
    ScopedContext s1(outer);
    EXPECT_EQ(FpContext::current(), &outer);
    {
      ScopedContext s2(inner);
      EXPECT_EQ(FpContext::current(), &inner);
    }
    EXPECT_EQ(FpContext::current(), &outer);
  }
  EXPECT_EQ(FpContext::current(), nullptr);
}

TEST(ScopedPrecise, TemporarilyDisablesImprecision) {
  FpContext ctx{IhwConfig::all_imprecise()};
  ScopedContext scope(ctx);
  const SimFloat a(1.75f), b(1.75f);
  {
    ScopedPrecise precise;
    EXPECT_EQ((a * b).value(), 1.75f * 1.75f);
  }
  EXPECT_EQ((a * b).value(), ifp_mul(1.75f, 1.75f));
  // Ops inside the precise scope are still counted.
  EXPECT_EQ(ctx.counters()[OpClass::FMul], 2u);
}

TEST(MemoryTracking, GloadGstoreCountAccessesAndAddressMath) {
  FpContext ctx{IhwConfig::precise()};
  ScopedContext scope(ctx);
  float x = 3.0f;
  EXPECT_EQ(gload(x), 3.0f);
  gstore(x, 5.0f);
  EXPECT_EQ(x, 5.0f);
  count_mem(4, 2);
  count_int_ops(3);
  EXPECT_EQ(ctx.counters()[OpClass::Load], 5u);
  EXPECT_EQ(ctx.counters()[OpClass::Store], 3u);
  EXPECT_EQ(ctx.counters()[OpClass::IAdd], 5u);  // 2 from gload/gstore + 3
}

TEST(Simt, LaunchVisitsEveryThreadExactlyOnce) {
  common::Grid<int> visits(8, 10, 0);
  launch(Dim3(5, 2), Dim3(2, 4), [&](const ThreadCtx& t) {
    visits(t.global_y(), t.global_x())++;
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Simt, ThreadCoordinatesConsistent) {
  launch(Dim3(3, 2), Dim3(4, 4), [&](const ThreadCtx& t) {
    ASSERT_LT(t.thread_idx.x, t.block_dim.x);
    ASSERT_LT(t.block_idx.x, t.grid_dim.x);
    ASSERT_EQ(t.global_x(), t.block_idx.x * 4 + t.thread_idx.x);
    ASSERT_LT(t.linear_tid(), t.block_dim.count());
  });
}

TEST(Simt, BlockPhasesActAsBarriers) {
  // Phase 1 fills a shared tile; phase 2 reads neighbours: with barrier
  // semantics every read sees phase-1 data.
  launch_blocks(Dim3(2), Dim3(16), [&](const BlockCtx& blk) {
    std::vector<int> tile(16, -1);
    blk.phase([&](const ThreadCtx& t) {
      tile[t.thread_idx.x] = static_cast<int>(t.thread_idx.x);
    });
    blk.phase([&](const ThreadCtx& t) {
      const unsigned left = t.thread_idx.x == 0 ? 15u : t.thread_idx.x - 1;
      ASSERT_EQ(tile[left], static_cast<int>(left));
    });
  });
}

TEST(Timing, RooflineSelectsBusiestResource) {
  GpuConfig gpu = GpuConfig::gtx480();
  PerfCounters c;
  c.bump(OpClass::FMul, 1u << 24);
  auto t = estimate_time(c, gpu, 1.0);
  EXPECT_STREQ(t.bound_by(), "fpu");
  c.bump(OpClass::FRcp, 1u << 24);  // SFUs are 8x scarcer
  t = estimate_time(c, gpu, 1.0);
  EXPECT_STREQ(t.bound_by(), "sfu");
  c.bump(OpClass::Load, 1u << 26);
  t = estimate_time(c, gpu, 1.0);
  EXPECT_STREQ(t.bound_by(), "memory");
  EXPECT_GE(t.total_ns, t.fpu_ns);
  EXPECT_GE(t.total_ns, t.sfu_ns);
}

TEST(Timing, DramFractionScalesMemoryTime) {
  GpuConfig gpu = GpuConfig::gtx480();
  PerfCounters c;
  c.bump(OpClass::Load, 1u << 26);
  const auto full = estimate_time(c, gpu, 1.0);
  const auto cached = estimate_time(c, gpu, 0.25);
  EXPECT_NEAR(cached.mem_ns, full.mem_ns * 0.25, 1e-6);
}

TEST(Wattch, BreakdownComponentsSumToTotal) {
  PerfCounters c;
  c.bump(OpClass::FAdd, 1u << 22);
  c.bump(OpClass::FMul, 1u << 22);
  c.bump(OpClass::FRcp, 1u << 20);
  c.bump(OpClass::IAdd, 1u << 21);
  c.bump(OpClass::Load, 1u << 21);
  const power::SynthesisDb db;
  const auto b = estimate_power(c, GpuConfig::gtx480(), db);
  EXPECT_NEAR(b.fpu_w + b.sfu_w + b.alu_w + b.frontend_w + b.mem_w + b.static_w,
              b.total_w, 1e-9);
  EXPECT_NEAR(b.fpu_share() + b.sfu_share() + b.alu_share() +
                  (b.frontend_w + b.mem_w + b.static_w) / b.total_w,
              1.0, 1e-9);
  EXPECT_GT(b.arith_share(), 0.0);
  EXPECT_LT(b.arith_share(), 1.0);
}

TEST(Wattch, ComputeIntensiveKernelLandsInPaperBand) {
  // An op mix like HotSpot's (9 add, 5 mul, 3 rcp, 7 int, 7 mem per cell)
  // must land in the paper's FPU+SFU 27-38% band with ALU < 10%.
  PerfCounters c;
  const std::uint64_t cells = 1u << 20;
  c.bump(OpClass::FAdd, 9 * cells);
  c.bump(OpClass::FMul, 5 * cells);
  c.bump(OpClass::FRcp, 3 * cells);
  c.bump(OpClass::IAdd, 7 * cells);
  c.bump(OpClass::Load, 6 * cells);
  c.bump(OpClass::Store, 1 * cells);
  const power::SynthesisDb db;
  const auto b = estimate_power(c, GpuConfig::gtx480(), db);
  EXPECT_GT(b.arith_share(), 0.25);
  EXPECT_LT(b.arith_share(), 0.40);
  EXPECT_LT(b.alu_share(), 0.10);
}

TEST(GpuConfig, Gtx480Throughputs) {
  const auto g = GpuConfig::gtx480();
  EXPECT_EQ(g.num_sm, 15);
  EXPECT_NEAR(g.fpu_ops_per_ns(), 15 * 32 * 1.4, 1e-9);
  EXPECT_NEAR(g.sfu_ops_per_ns(), 15 * 4 * 1.4, 1e-9);
  EXPECT_GT(g.fpu_ops_per_ns() / g.sfu_ops_per_ns(), 7.9);
}

}  // namespace
}  // namespace ihw::gpu
