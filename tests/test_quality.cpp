// Tests for the quality metrics: grid metrics, SSIM, Pratt's figure of
// merit, distance transform, and the Sobel edge detector.
#include "quality/grid_metrics.h"
#include "quality/pratt.h"
#include "quality/ssim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ihw::quality {
namespace {

common::GridF constant_grid(std::size_t n, float v) {
  return common::GridF(n, n, v);
}

TEST(GridMetrics, KnownValues) {
  common::GridF a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b = a;
  EXPECT_DOUBLE_EQ(mae(a, b), 0.0);
  EXPECT_DOUBLE_EQ(mse(a, b), 0.0);
  EXPECT_DOUBLE_EQ(wed(a, b), 0.0);
  b(1, 1) = 6;  // one cell off by 2
  EXPECT_DOUBLE_EQ(mae(a, b), 0.5);
  EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
  EXPECT_DOUBLE_EQ(wed(a, b), 2.0);
  EXPECT_DOUBLE_EQ(max_rel_error(a, b), 0.5);
}

TEST(GridMetrics, PsnrInfiniteForIdenticalAndFiniteOtherwise) {
  const auto a = constant_grid(8, 10.0f);
  auto b = a;
  EXPECT_TRUE(std::isinf(psnr(a, b, 255.0)));
  b(0, 0) = 11.0f;
  const double p = psnr(a, b, 255.0);
  EXPECT_GT(p, 40.0);
  EXPECT_TRUE(std::isfinite(p));
}

TEST(Ssim, IdenticalImagesScoreOne) {
  common::Xoshiro256 rng(71);
  common::GridF img(32, 32);
  for (auto& v : img) v = static_cast<float>(rng.uniform(0, 255));
  EXPECT_DOUBLE_EQ(ssim(img, img, 255.0), 1.0);
}

TEST(Ssim, DegradesMonotonicallyWithNoise) {
  common::Xoshiro256 rng(72);
  common::GridF img(64, 64);
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      img(r, c) = static_cast<float>(128 + 100 * std::sin(r * 0.3) *
                                               std::cos(c * 0.2));
  double prev = 1.0;
  for (double amp : {5.0, 20.0, 60.0}) {
    common::Xoshiro256 nrng(73);
    auto noisy = img;
    for (auto& v : noisy)
      v += static_cast<float>(nrng.uniform(-amp, amp));
    const double s = ssim(img, noisy, 255.0);
    EXPECT_LT(s, prev);
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

TEST(Ssim, MeanShiftPenalizedLessThanStructureChange) {
  common::GridF img(48, 48);
  common::Xoshiro256 rng(74);
  for (auto& v : img) v = static_cast<float>(rng.uniform(50, 200));
  auto shifted = img;
  for (auto& v : shifted) v += 10.0f;  // luminance shift
  auto scrambled = img;
  common::Xoshiro256 rng2(75);
  for (auto& v : scrambled) v = static_cast<float>(rng2.uniform(50, 200));
  EXPECT_GT(ssim(img, shifted, 255.0), ssim(img, scrambled, 255.0));
}

TEST(Ssim, RgbUsesLuma) {
  common::RgbImage a(32, 32), b(32, 32);
  common::Xoshiro256 rng(76);
  for (std::size_t i = 0; i < a.pixels.size(); ++i)
    a.pixels[i] = b.pixels[i] = static_cast<std::uint8_t>(rng() & 0xFF);
  EXPECT_DOUBLE_EQ(ssim_rgb(a, b), 1.0);
  const auto l = luma(a);
  EXPECT_EQ(l.rows(), 32u);
  for (auto v : l) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
  }
}

TEST(DistanceTransform, ExactAgainstBruteForce) {
  common::Xoshiro256 rng(77);
  EdgeMap mask(24, 24, 0);
  for (int i = 0; i < 12; ++i)
    mask(static_cast<std::size_t>(rng.uniform(0, 24)),
         static_cast<std::size_t>(rng.uniform(0, 24))) = 1;
  const auto dist = distance_transform(mask);
  for (std::size_t r = 0; r < 24; ++r)
    for (std::size_t c = 0; c < 24; ++c) {
      double best = 1e18;
      for (std::size_t rr = 0; rr < 24; ++rr)
        for (std::size_t cc = 0; cc < 24; ++cc)
          if (mask(rr, cc)) {
            const double dr = static_cast<double>(r) - static_cast<double>(rr);
            const double dc = static_cast<double>(c) - static_cast<double>(cc);
            best = std::min(best, dr * dr + dc * dc);
          }
      ASSERT_NEAR(dist(r, c), std::sqrt(best), 1e-4) << r << "," << c;
    }
}

TEST(PrattFom, PerfectDetectionScoresOne) {
  EdgeMap ideal(16, 16, 0);
  for (std::size_t c = 2; c < 14; ++c) ideal(8, c) = 1;
  EXPECT_DOUBLE_EQ(pratt_fom(ideal, ideal), 1.0);
}

TEST(PrattFom, EmptyMapsEdgeCases) {
  EdgeMap empty(8, 8, 0);
  EdgeMap some(8, 8, 0);
  some(4, 4) = 1;
  EXPECT_DOUBLE_EQ(pratt_fom(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(pratt_fom(empty, some), 0.0);
  EXPECT_DOUBLE_EQ(pratt_fom(some, empty), 0.0);
}

TEST(PrattFom, ShiftedEdgePenalizedByDistance) {
  EdgeMap ideal(32, 32, 0), shift1(32, 32, 0), shift3(32, 32, 0);
  for (std::size_t c = 0; c < 32; ++c) {
    ideal(16, c) = 1;
    shift1(17, c) = 1;
    shift3(19, c) = 1;
  }
  const double f1 = pratt_fom(ideal, shift1);
  const double f3 = pratt_fom(ideal, shift3);
  // d=1 with alpha=1/9: each pixel contributes 1/(1+1/9) = 0.9.
  EXPECT_NEAR(f1, 0.9, 1e-9);
  EXPECT_NEAR(f3, 1.0 / 2.0, 1e-9);  // d=3 -> 1/(1+1) = 0.5
  EXPECT_LT(f3, f1);
}

TEST(PrattFom, OverDetectionDilutesScore) {
  EdgeMap ideal(16, 16, 0), over(16, 16, 0);
  for (std::size_t c = 0; c < 16; ++c) {
    ideal(8, c) = 1;
    over(8, c) = 1;
    over(0, c) = 1;  // spurious far edge
  }
  const double f = pratt_fom(ideal, over);
  EXPECT_LT(f, 0.6);
  EXPECT_GT(f, 0.4);  // the true half still counts fully
}

TEST(SobelEdges, DetectsAStepEdge) {
  common::GridF img(32, 32, 0.0f);
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 16; c < 32; ++c) img(r, c) = 200.0f;
  const auto e = sobel_edges(img, 0.25);
  // Edge pixels cluster around column 15/16.
  std::size_t on = 0, near_edge = 0;
  for (std::size_t r = 1; r < 31; ++r)
    for (std::size_t c = 1; c < 31; ++c)
      if (e(r, c)) {
        ++on;
        if (c >= 14 && c <= 17) ++near_edge;
      }
  EXPECT_GT(on, 0u);
  EXPECT_EQ(on, near_edge);
}

TEST(SobelEdges, FlatImageHasNoEdges) {
  const auto e = sobel_edges(constant_grid(16, 42.0f), 0.25);
  for (auto v : e) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace ihw::quality
