// The tile-GEMM engine's contract (DESIGN.md §16): gemm::run is bit-identical
// to gemm::reference at every tile size, thread count, SIMD backend, and
// accumulation policy; the screened path keeps fault-draw and guard parity
// with the reference schedule; the fused mac spans match their two-pass
// decomposition; the black-box accumulation probes (feature_detect.h) report
// exactly the configured policy; and the daemon-side gemm/mlp workload
// recipes validate their parameters strictly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gemm/feature_detect.h"
#include "gemm/gemm.h"
#include "gpu/context.h"
#include "ihw/batch.h"
#include "ihw/dispatch.h"
#include "ihw/simd/isa.h"
#include "serve/workloads.h"
#include "sweep/fingerprint.h"

namespace ihw {
namespace {

using gemm::AccumMode;
using gemm::GemmConfig;
using gpu::FpContext;
using gpu::OpClass;
using gpu::ScopedContext;

std::vector<float> inputs(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

/// Random bit patterns with IEEE specials mixed in (mac-span identity).
std::vector<float> operands(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<float> v(n);
  const float specials[] = {0.0f,
                            -0.0f,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::min(),
                            1.0f,
                            -1.5f};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 8 == 0) {
      v[i] = specials[rng() % (sizeof(specials) / sizeof(float))];
    } else {
      const auto bits = static_cast<std::uint32_t>(rng());
      std::memcpy(&v[i], &bits, sizeof(float));
    }
  }
  return v;
}

bool spans_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

GemmConfig policy(AccumMode m, int knob) {
  GemmConfig g;
  g.accum = m;
  if (m == AccumMode::kFp32Trunc) g.accum_trunc = knob;
  if (m == AccumMode::kIfpAdd) g.accum_th = knob;
  if (m == AccumMode::kWideFp64) g.accum_block = knob;
  return g;
}

const std::vector<std::pair<std::string, GemmConfig>>& accum_policies() {
  static const std::vector<std::pair<std::string, GemmConfig>> kPolicies = {
      {"fp32", policy(AccumMode::kFp32, 0)},
      {"fp32_trunc tr=6", policy(AccumMode::kFp32Trunc, 6)},
      {"ifp_add th=8", policy(AccumMode::kIfpAdd, 8)},
      {"wide_fp64 blk=5", policy(AccumMode::kWideFp64, 5)},
  };
  return kPolicies;
}

const std::vector<std::pair<std::string, IhwConfig>>& mul_configs() {
  static const std::vector<std::pair<std::string, IhwConfig>> kConfigs = {
      {"precise", IhwConfig::precise()},
      {"ifp", IhwConfig::mul_only(MulMode::ImpreciseSimple, 0)},
      {"acfp_log tr=8", IhwConfig::mul_only(MulMode::MitchellLog, 8)},
      {"trunc 12", IhwConfig::mul_only(MulMode::BitTruncated, 12)},
  };
  return kConfigs;
}

// --- tiled == reference bit-identity ----------------------------------------

TEST(GemmBitIdentity, TiledMatchesReferenceAcrossTilesThreadsAndPolicies) {
  constexpr int kM = 37, kN = 53, kK = 129;
  const auto A = inputs(std::size_t(kM) * kK, 101);
  const auto B = inputs(std::size_t(kK) * kN, 102);
  // {mc, kc, nc, threads}: canonical, tiny-uneven, degenerate, oversized.
  const int tiles[][4] = {
      {64, 256, 256, 1}, {3, 7, 5, 4}, {1, 16, 8, 3}, {128, 512, 512, 2}};

  for (const auto& [mul_label, icfg] : mul_configs()) {
    for (const auto& [acc_label, base] : accum_policies()) {
      std::vector<float> ref(std::size_t(kM) * kN);
      FpContext ref_ctx(icfg);
      {
        ScopedContext scope(ref_ctx);
        gemm::reference(A.data(), B.data(), ref.data(), kM, kN, kK, base);
      }
      for (const auto& t : tiles) {
        GemmConfig g = base;
        g.mc = t[0];
        g.kc = t[1];
        g.nc = t[2];
        g.threads = t[3];
        std::vector<float> out(std::size_t(kM) * kN);
        FpContext ctx(icfg);
        {
          ScopedContext scope(ctx);
          gemm::run(A.data(), B.data(), out.data(), kM, kN, kK, g);
        }
        EXPECT_TRUE(spans_identical(out, ref))
            << mul_label << " / " << acc_label << " tiles {" << t[0] << ","
            << t[1] << "," << t[2] << "} threads " << t[3];
        // Both paths charge the caller exactly M*N*K multiplies and adds.
        EXPECT_EQ(ctx.counters().counts, ref_ctx.counters().counts)
            << mul_label << " / " << acc_label;
      }
      const auto macs = std::uint64_t(kM) * kN * kK;
      EXPECT_EQ(ref_ctx.counters()[OpClass::FMul], macs);
      EXPECT_EQ(ref_ctx.counters()[OpClass::FAdd], macs);
    }
  }
}

TEST(GemmBitIdentity, InvariantAcrossSimdBackends) {
  constexpr int kM = 19, kN = 40, kK = 33;
  const auto A = inputs(std::size_t(kM) * kK, 103);
  const auto B = inputs(std::size_t(kK) * kN, 104);
  const IhwConfig icfg = IhwConfig::mul_only(MulMode::ImpreciseSimple, 0);

  for (const auto& [acc_label, g] : accum_policies()) {
    std::vector<float> ref(std::size_t(kM) * kN);
    {
      FpContext ctx(icfg);
      ScopedContext scope(ctx);
      gemm::reference(A.data(), B.data(), ref.data(), kM, kN, kK, g);
    }
    for (simd::IsaLevel level : {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2,
                                 simd::IsaLevel::kAvx512}) {
      // Unsupported levels clamp down inside the dispatcher; the identity
      // must hold wherever the force actually lands.
      simd::ScopedIsa forced(level);
      std::vector<float> out(std::size_t(kM) * kN);
      FpContext ctx(icfg);
      ScopedContext scope(ctx);
      gemm::run(A.data(), B.data(), out.data(), kM, kN, kK, g);
      EXPECT_TRUE(spans_identical(out, ref))
          << acc_label << " under forced " << simd::isa_name(level)
          << " (active " << simd::kernels().name << ")";
    }
  }
}

TEST(GemmBitIdentity, DegenerateShapesAndTiles) {
  const auto A = inputs(64, 105);
  const auto B = inputs(64, 106);
  std::vector<float> C(16, 42.0f);
  // K <= 0: every element keeps its +0 accumulation seed.
  gemm::run(A.data(), B.data(), C.data(), 4, 4, 0, GemmConfig{});
  for (float v : C) EXPECT_EQ(v, 0.0f);
  std::fill(C.begin(), C.end(), 42.0f);
  // M/N <= 0: no-op, C untouched.
  gemm::run(A.data(), B.data(), C.data(), 0, 4, 4, GemmConfig{});
  gemm::run(A.data(), B.data(), C.data(), 4, -1, 4, GemmConfig{});
  for (float v : C) EXPECT_EQ(v, 42.0f);
  // Nonpositive tile sizes clamp to 1 and still honor the contract.
  GemmConfig g = policy(AccumMode::kWideFp64, 3);
  g.mc = 0;
  g.kc = -5;
  g.nc = 0;
  std::vector<float> out(16), ref(16);
  gemm::run(A.data(), B.data(), out.data(), 4, 4, 4, g);
  gemm::reference(A.data(), B.data(), ref.data(), 4, 4, 4, g);
  EXPECT_TRUE(spans_identical(out, ref));
}

// --- screened path: fault and counter parity --------------------------------

TEST(GemmScreened, FaultAndCounterParityAcrossThreads) {
  constexpr int kM = 23, kN = 31, kK = 57;
  const auto A = inputs(std::size_t(kM) * kK, 107);
  const auto B = inputs(std::size_t(kK) * kN, 108);
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = fault::FaultConfig::uniform(0.05, 1234);
  cfg.guard.enabled = true;

  std::vector<float> ref(std::size_t(kM) * kN);
  FpContext ref_ctx(cfg);
  {
    ScopedContext scope(ref_ctx);
    gemm::reference(A.data(), B.data(), ref.data(), kM, kN, kK, GemmConfig{});
  }
  EXPECT_GT(ref_ctx.fault_counters().total_injected(), 0u);

  for (int threads : {1, 3}) {
    GemmConfig g;
    g.threads = threads;
    std::vector<float> out(std::size_t(kM) * kN);
    FpContext ctx(cfg);
    {
      ScopedContext scope(ctx);
      gemm::run(A.data(), B.data(), out.data(), kM, kN, kK, g);
    }
    EXPECT_TRUE(spans_identical(out, ref)) << "threads " << threads;
    const auto& fa = ctx.fault_counters();
    const auto& fb = ref_ctx.fault_counters();
    EXPECT_EQ(fa.injected, fb.injected) << "threads " << threads;
    EXPECT_EQ(fa.guard_trips, fb.guard_trips) << "threads " << threads;
    EXPECT_EQ(fa.degraded_epochs, fb.degraded_epochs) << "threads " << threads;
    EXPECT_EQ(fa.run_degradations, fb.run_degradations)
        << "threads " << threads;
    EXPECT_EQ(fa.retried_epochs, fb.retried_epochs) << "threads " << threads;
    EXPECT_EQ(ctx.counters().counts, ref_ctx.counters().counts)
        << "threads " << threads;
  }
}

// --- fused mac spans == two-pass decomposition ------------------------------

TEST(GemmMacSpans, FusedMatchesTwoPassEverywhere) {
  constexpr std::size_t kN = 8192;
  const auto a = operands(kN, 201), b = operands(kN, 202), c = operands(kN, 203);

  std::vector<IhwConfig> configs;
  configs.push_back(IhwConfig::all_imprecise());
  for (MulMode m : {MulMode::ImpreciseSimple, MulMode::MitchellLog,
                    MulMode::MitchellFull, MulMode::BitTruncated}) {
    IhwConfig cfg = IhwConfig::mul_only(m, 9);
    configs.push_back(cfg);  // imprecise mul, precise accumulate
    cfg.add_enabled = true;
    cfg.add_th = 8;
    configs.push_back(cfg);  // fully fused imprecise path
  }
  IhwConfig add_only = IhwConfig::precise();
  add_only.add_enabled = true;
  add_only.add_th = 12;
  configs.push_back(add_only);  // precise mul, imprecise accumulate

  for (const auto& cfg : configs) {
    const FpDispatch d(cfg);
    std::vector<float> want(kN), tmp(kN), got(kN);
    d.mul_n(a.data(), b.data(), tmp.data(), kN);
    d.add_n(tmp.data(), c.data(), want.data(), kN);
    d.mac_n(a.data(), b.data(), c.data(), got.data(), kN);
    ASSERT_TRUE(spans_identical(got, want))
        << "mac_n vs mul_n+add_n, mul_mode "
        << static_cast<int>(cfg.mul_mode) << " add_enabled "
        << cfg.add_enabled;
    // `out` may alias the addend span.
    got = c;
    d.mac_n(a.data(), b.data(), got.data(), got.data(), kN);
    ASSERT_TRUE(spans_identical(got, want))
        << "aliased mac_n, mul_mode " << static_cast<int>(cfg.mul_mode);
  }
}

// --- accumulation-feature probes --------------------------------------------

TEST(GemmFeatureProbes, DetectMatchesConfiguredPolicy) {
  std::vector<GemmConfig> grid = {policy(AccumMode::kFp32, 0)};
  for (int tr : {0, 1, 2, 4, 12, 22})
    grid.push_back(policy(AccumMode::kFp32Trunc, tr));
  for (int th : {1, 2, 8, 16, 27, 30})  // 30 clamps to the datapath max
    grid.push_back(policy(AccumMode::kIfpAdd, th));
  for (int blk : {1, 2, 3, 8, 32, 128, 200})  // 200 saturates the probe
    grid.push_back(policy(AccumMode::kWideFp64, blk));

  for (const auto& g : grid) {
    const auto det = gemm::detect(g);
    const auto exp = gemm::expected(g);
    EXPECT_EQ(det, exp) << to_string(g.accum) << " trunc " << g.accum_trunc
                        << " th " << g.accum_th << " blk " << g.accum_block
                        << ": detected " << det.describe() << ", expected "
                        << exp.describe();
  }
}

TEST(GemmFeatureProbes, ProbesSeparateThePolicies) {
  // The probe vector must distinguish materially different accumulators,
  // otherwise the self-test could pass with detect() hard-wired.
  const auto fp32 = gemm::detect(policy(AccumMode::kFp32, 0));
  const auto trunc = gemm::detect(policy(AccumMode::kFp32Trunc, 12));
  const auto ifp = gemm::detect(policy(AccumMode::kIfpAdd, 8));
  const auto wide = gemm::detect(policy(AccumMode::kWideFp64, 32));
  EXPECT_NE(fp32, trunc);
  EXPECT_NE(fp32, ifp);
  EXPECT_NE(fp32, wide);
  EXPECT_NE(trunc, ifp);
  EXPECT_EQ(fp32.accum_frac_bits, 23);
  EXPECT_EQ(trunc.accum_frac_bits, 11);
  EXPECT_EQ(ifp.accum_frac_bits, 7);
  EXPECT_EQ(wide.wide_block, 32);
}

// --- daemon workload recipes ------------------------------------------------

sweep::Workload gemm_workload() {
  return sweep::Workload{"gemm",
                         {{"m", 24.0}, {"n", 16.0}, {"k", 32.0}, {"accum", 0.0}},
                         77};
}

TEST(GemmWorkloads, ValidRecipesEvaluateDeterministically) {
  std::string err;
  auto eval = serve::make_workload_eval(gemm_workload(), "precise", &err);
  ASSERT_TRUE(static_cast<bool>(eval)) << err;
  const auto r1 = eval(), r2 = eval();
  EXPECT_TRUE(std::isfinite(r1.metric("checksum")));
  EXPECT_EQ(r1.metric("checksum"), r2.metric("checksum"));

  sweep::Workload mlp{"mlp",
                      {{"samples", 32.0},
                       {"dim", 8.0},
                       {"hidden", 8.0},
                       {"classes", 4.0},
                       {"accum", 2.0},
                       {"accum_th", 8.0}},
                      99};
  err.clear();
  auto mlp_eval = serve::make_workload_eval(mlp, "precise", &err);
  ASSERT_TRUE(static_cast<bool>(mlp_eval)) << err;
  const auto rec = mlp_eval();
  EXPECT_GE(rec.metric("accuracy"), 0.0);
  EXPECT_LE(rec.metric("accuracy"), 1.0);
  const IhwConfig precise = IhwConfig::precise();
  EXPECT_EQ(serve::workload_fingerprint(mlp), mlp.fingerprint(&precise));
}

TEST(GemmWorkloads, StrictParameterValidation) {
  const auto rejects = [](sweep::Workload w) {
    std::string err;
    auto eval = serve::make_workload_eval(w, "precise", &err);
    EXPECT_FALSE(static_cast<bool>(eval));
    EXPECT_FALSE(err.empty());
  };

  {  // missing structural parameter
    auto w = gemm_workload();
    w.params.erase(w.params.begin() + 2);  // drop "k"
    rejects(w);
  }
  {  // fractional value where an integer is required
    auto w = gemm_workload();
    w.params[2].second = 2.5;
    rejects(w);
  }
  {  // out-of-range dimension and accumulation mode
    auto w = gemm_workload();
    w.params[0].second = 0.0;
    rejects(w);
    w = gemm_workload();
    w.params[3].second = 4.0;
    rejects(w);
  }
  {  // each mode's knob is required exactly when that mode needs it
    auto w = gemm_workload();
    w.params[3].second = 2.0;  // kIfpAdd without accum_th
    rejects(w);
    w.params.emplace_back("accum_th", 0.0);  // below the TH datapath floor
    rejects(w);
  }
  {  // mlp classes floor is 2
    sweep::Workload w{"mlp",
                      {{"samples", 32.0},
                       {"dim", 8.0},
                       {"hidden", 8.0},
                       {"classes", 1.0},
                       {"accum", 0.0}},
                      99};
    rejects(w);
  }
}

}  // namespace
}  // namespace ihw
