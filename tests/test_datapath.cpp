// Tests for the structural datapath primitives, plus the bit-exact
// cross-verification of the structural unit models against the functional
// models (the Fig. 11 "functional verification" step of the paper's flow).
#include "arith/datapath.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ihw/ifp_add.h"

namespace ihw::arith {
namespace {

TEST(PriorityEncoder, FindsLeadingOneWithinWidth) {
  EXPECT_EQ(priority_encode(0, 16), -1);
  EXPECT_EQ(priority_encode(1, 16), 0);
  EXPECT_EQ(priority_encode(0b1010, 16), 3);
  EXPECT_EQ(priority_encode(0xFFFF, 16), 15);
  // Bits above the width are masked off, as in hardware.
  EXPECT_EQ(priority_encode(0x10000, 16), -1);
  EXPECT_EQ(priority_encode(0x1F000, 16), 15);  // 0xF000 remains
  EXPECT_EQ(priority_encode(0x11000, 16), 12);
}

TEST(BarrelShifter, RightShiftSaturatesAtWidth) {
  EXPECT_EQ(barrel_shift_right(0xFF, 4, 8), 0xFull);
  EXPECT_EQ(barrel_shift_right(0xFF, 8, 8), 0ull);
  EXPECT_EQ(barrel_shift_right(0xFF, 100, 8), 0ull);
  EXPECT_EQ(barrel_shift_right(0x1FF, 0, 8), 0xFFull);  // masked to width
}

TEST(BarrelShifter, LeftShiftTruncatesToWidth) {
  EXPECT_EQ(barrel_shift_left(0b1011, 2, 6), 0b101100ull & 0x3F);
  EXPECT_EQ(barrel_shift_left(0xFF, 4, 8), 0xF0ull);
  EXPECT_EQ(barrel_shift_left(1, 7, 8), 0x80ull);
  EXPECT_EQ(barrel_shift_left(1, 8, 8), 0ull);
}

TEST(BarrelShifter, NegativeShiftsReverseDirection) {
  EXPECT_EQ(barrel_shift_right(0x0F, -4, 8), 0xF0ull);
  EXPECT_EQ(barrel_shift_left(0xF0, -4, 8), 0x0Full);
}

TEST(AdderN, SumAndCarryOut) {
  auto r = add_n(0xFF, 0x01, false, 8);
  EXPECT_EQ(r.sum, 0ull);
  EXPECT_TRUE(r.carry_out);
  r = add_n(0x7F, 0x01, false, 8);
  EXPECT_EQ(r.sum, 0x80ull);
  EXPECT_FALSE(r.carry_out);
  r = add_n(0xFE, 0x01, true, 8);
  EXPECT_EQ(r.sum, 0ull);
  EXPECT_TRUE(r.carry_out);
}

TEST(AdderN, TwosComplementSubtraction) {
  // a - b via a + ~b + 1 within the width.
  const int w = 12;
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng() & 0xFFF;
    const std::uint64_t b = rng() & 0xFFF;
    if (b > a) continue;
    const auto r = add_n(a, ~b & 0xFFF, true, w);
    EXPECT_EQ(r.sum, a - b);
  }
}

TEST(ArrayMultiplier, ExactWithoutTruncation) {
  common::Xoshiro256 rng(8);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng() >> 40;
    const std::uint64_t b = rng() >> 40;
    EXPECT_EQ(array_multiply(a, b, 24, 24, 0), exact_mul(a, b));
  }
}

TEST(ArrayMultiplier, ColumnTruncationUnderestimatesBoundedly) {
  common::Xoshiro256 rng(9);
  for (int drop : {4, 8, 16, 24}) {
    // Worst dropped mass: sum over columns s < drop of (s+1) cells at 2^s.
    unsigned __int128 worst = 0;
    for (int s = 0; s < drop; ++s)
      worst += static_cast<unsigned __int128>(std::min(s + 1, 24)) << s;
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t a = rng() >> 40;
      const std::uint64_t b = rng() >> 40;
      const auto exact = exact_mul(a, b);
      const auto approx = array_multiply(a, b, 24, 24, drop);
      ASSERT_LE(approx, exact);
      ASSERT_LE(exact - approx, worst);
    }
  }
}

TEST(ArrayMultiplier, CellCountMatchesClosedForm) {
  EXPECT_EQ(array_cell_count(24, 24, 0), 576);
  EXPECT_EQ(array_cell_count(53, 53, 0), 2809);
  // Dropping below column c removes sum_{s<c} (cells in column s).
  EXPECT_EQ(array_cell_count(24, 24, 1), 575);
  EXPECT_EQ(array_cell_count(24, 24, 2), 573);
  EXPECT_EQ(array_cell_count(24, 24, 47), 0);
  long long manual = 0;
  for (int s = 21; s <= 46; ++s)
    manual += std::min({s + 1, 24, 47 - s});
  EXPECT_EQ(array_cell_count(24, 24, 21), manual);
}

// ---------------------------------------------------------------------------
// Structural vs functional cross-verification (the paper's VHDL-vs-C++ step).
// ---------------------------------------------------------------------------

class StructuralAdderMatch : public ::testing::TestWithParam<int> {};

TEST_P(StructuralAdderMatch, BitExactAcrossRandomOperands) {
  const int th = GetParam();
  common::Xoshiro256 rng(100 + static_cast<std::uint64_t>(th));
  for (int i = 0; i < 60000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))) *
        (rng.uniform() < 0.5 ? -1.0 : 1.0));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))) *
        (rng.uniform() < 0.5 ? -1.0 : 1.0));
    const float f = ihw::ifp_add(a, b, th);
    const float s = structural_ifp_add32(a, b, th);
    ASSERT_EQ(fp::to_bits(f), fp::to_bits(s))
        << "a=" << a << " b=" << b << " th=" << th;
    const float fs = ihw::ifp_sub(a, b, th);
    const float ss = structural_ifp_add32(a, b, th, /*subtract=*/true);
    if (!std::isnan(fs) || !std::isnan(ss)) {
      ASSERT_EQ(fp::to_bits(fs), fp::to_bits(ss));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThSweep, StructuralAdderMatch,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 20, 23, 27));

struct AcfpCase {
  ihw::AcfpPath path;
  int trunc;
};

class StructuralAcfpMatch : public ::testing::TestWithParam<AcfpCase> {};

TEST_P(StructuralAcfpMatch, BitExactAcrossRandomOperands) {
  const auto [path, trunc] = GetParam();
  common::Xoshiro256 rng(200 + static_cast<std::uint64_t>(trunc));
  for (int i = 0; i < 60000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))) *
        (rng.uniform() < 0.5 ? -1.0 : 1.0));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))));
    const float f = ihw::acfp_mul(a, b, path, trunc);
    const float s = structural_acfp_mul32(a, b, path, trunc);
    ASSERT_EQ(fp::to_bits(f), fp::to_bits(s)) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PathTruncSweep, StructuralAcfpMatch,
    ::testing::Values(AcfpCase{ihw::AcfpPath::Log, 0},
                      AcfpCase{ihw::AcfpPath::Log, 5},
                      AcfpCase{ihw::AcfpPath::Log, 17},
                      AcfpCase{ihw::AcfpPath::Log, 19},
                      AcfpCase{ihw::AcfpPath::Log, 23},
                      AcfpCase{ihw::AcfpPath::Full, 0},
                      AcfpCase{ihw::AcfpPath::Full, 5},
                      AcfpCase{ihw::AcfpPath::Full, 17},
                      AcfpCase{ihw::AcfpPath::Full, 20},
                      AcfpCase{ihw::AcfpPath::Full, 23}));

}  // namespace
}  // namespace ihw::arith
