// Tests for the original imprecise multiplier (mantissa product ~ 1+Ma+Mb).
#include "ihw/ifp_mul.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ihw {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

TEST(IfpMul, SpecialValues) {
  EXPECT_TRUE(std::isnan(ifp_mul(kNan, 2.0f)));
  EXPECT_TRUE(std::isnan(ifp_mul(kInf, 0.0f)));
  EXPECT_TRUE(std::isnan(ifp_mul(0.0f, -kInf)));
  EXPECT_EQ(ifp_mul(kInf, 2.0f), kInf);
  EXPECT_EQ(ifp_mul(-kInf, 2.0f), -kInf);
  EXPECT_EQ(ifp_mul(kInf, -2.0f), -kInf);
  EXPECT_EQ(ifp_mul(0.0f, 5.0f), 0.0f);
  EXPECT_TRUE(std::signbit(ifp_mul(-0.0f, 5.0f)));
}

TEST(IfpMul, SignRules) {
  EXPECT_GT(ifp_mul(2.0f, 3.0f), 0.0f);
  EXPECT_LT(ifp_mul(-2.0f, 3.0f), 0.0f);
  EXPECT_LT(ifp_mul(2.0f, -3.0f), 0.0f);
  EXPECT_GT(ifp_mul(-2.0f, -3.0f), 0.0f);
}

TEST(IfpMul, PowersOfTwoAreExact) {
  // Ma = Mb = 0: no cross term dropped, product exact.
  for (int i = -20; i <= 20; ++i)
    for (int j = -20; j <= 20; ++j) {
      const float a = std::ldexp(1.0f, i), b = std::ldexp(1.0f, j);
      EXPECT_EQ(ifp_mul(a, b), a * b);
    }
}

TEST(IfpMul, OnePowerOfTwoOperandIsExact) {
  common::Xoshiro256 rng(21);
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float p2 = std::ldexp(1.0f, static_cast<int>(rng.uniform(-10, 10)));
    EXPECT_EQ(ifp_mul(a, p2), a * p2);
  }
}

TEST(IfpMul, ErrorBoundedBy25Percent) {
  common::Xoshiro256 rng(22);
  double max_rel = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const float a = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))));
    const float b = static_cast<float>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-20, 20))));
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    const double approx = ifp_mul(a, b);
    const double rel = std::fabs(approx - exact) / exact;
    ASSERT_LE(rel, 0.25 + 1e-7);
    max_rel = std::max(max_rel, rel);
  }
  // The sweep should get close to the worst case at Ma = Mb -> 1.
  EXPECT_GT(max_rel, 0.24);
}

TEST(IfpMul, WorstCaseAtMaxMantissas) {
  // (2-eps)*(2-eps) ~ 4 but 1+Ma+Mb ~ 3: exactly the 25% corner.
  const float a = std::nextafterf(2.0f, 0.0f);
  const double exact = static_cast<double>(a) * a;
  const double approx = ifp_mul(a, a);
  EXPECT_NEAR(std::fabs(approx - exact) / exact, 0.25, 1e-4);
}

TEST(IfpMul, AlwaysUnderestimatesMagnitude) {
  // The dropped Ma*Mb term is non-negative.
  common::Xoshiro256 rng(23);
  for (int i = 0; i < 200000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    EXPECT_LE(ifp_mul(a, b), a * b * (1.0f + 1e-6f));
  }
}

TEST(IfpMul, Commutative) {
  common::Xoshiro256 rng(24);
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(0.01, 100.0));
    const float b = static_cast<float>(rng.uniform(0.01, 100.0));
    EXPECT_EQ(ifp_mul(a, b), ifp_mul(b, a));
  }
}

TEST(IfpMul, CarryCaseNormalizesCorrectly) {
  // Ma + Mb >= 1 exercises eq. (6)'s exponent carry-in.
  const float a = 1.75f, b = 1.75f;  // Ma = Mb = 0.75
  // Mz = (1 + 1.5)/2 = 1.25, exp + 1 -> 2.5.
  EXPECT_FLOAT_EQ(ifp_mul(a, b), 2.5f);
  // No-carry case: 1.25 * 1.25 -> 1 + 0.5 = 1.5.
  EXPECT_FLOAT_EQ(ifp_mul(1.25f, 1.25f), 1.5f);
}

TEST(IfpMul, DoublePrecisionBoundHolds) {
  common::Xoshiro256 rng(25);
  for (int i = 0; i < 200000; ++i) {
    const double a = std::ldexp(rng.uniform(1.0, 2.0),
                                static_cast<int>(rng.uniform(-100, 100)));
    const double b = std::ldexp(rng.uniform(1.0, 2.0),
                                static_cast<int>(rng.uniform(-100, 100)));
    ASSERT_LE(std::fabs(ifp_mul(a, b) - a * b) / (a * b), 0.25 + 1e-12);
  }
}

TEST(IfpMul, OverflowSaturatesUnderflowFlushes) {
  const float big = std::ldexp(1.9f, 120);
  EXPECT_TRUE(std::isinf(ifp_mul(big, big)));
  const float small = std::ldexp(1.1f, -100);
  EXPECT_EQ(ifp_mul(small, small), 0.0f);
  EXPECT_TRUE(std::signbit(ifp_mul(small, -small)));
}

}  // namespace
}  // namespace ihw
