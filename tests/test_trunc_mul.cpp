// Tests for the intuitive bit-truncation baseline multiplier.
#include "ihw/trunc_mul.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "fpcore/float_bits.h"

namespace ihw {
namespace {

TEST(TruncMul, ZeroTruncationIsWithinOneUlpOfExact) {
  // trunc=0 computes the exact significand product, truncated (not rounded)
  // into the fraction field.
  common::Xoshiro256 rng(51);
  for (int i = 0; i < 200000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    const float r = trunc_mul(a, b, 0);
    ASSERT_LE(fp::ulp_distance(r, a * b), 1u);
  }
}

TEST(TruncMul, ErrorBoundIsTwoToTheMinusKeptBits) {
  common::Xoshiro256 rng(52);
  for (int tr : {4, 8, 12, 16, 19, 21}) {
    const double bound = std::ldexp(1.0, tr - 23) + 1e-9;
    double max_rel = 0.0;
    for (int i = 0; i < 150000; ++i) {
      const float a = static_cast<float>(rng.uniform(1.0, 2.0));
      const float b = static_cast<float>(rng.uniform(1.0, 2.0));
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      const double rel = std::fabs(trunc_mul(a, b, tr) - exact) / exact;
      ASSERT_LE(rel, bound);
      max_rel = std::max(max_rel, rel);
    }
    // The bound is achievable (mantissa just below the truncation granule).
    EXPECT_GT(max_rel, bound * 0.5);
  }
}

TEST(TruncMul, PaperPointTwentyOneBitsGivesAboutTwentyOnePercent) {
  common::Xoshiro256 rng(53);
  double max_rel = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    max_rel = std::max(max_rel,
                       std::fabs(trunc_mul(a, b, 21) - exact) / exact);
  }
  EXPECT_NEAR(max_rel, 0.20, 0.03);  // paper: "about 21%"
}

TEST(TruncMul, AlwaysUnderestimatesMagnitude) {
  common::Xoshiro256 rng(54);
  for (int i = 0; i < 100000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    EXPECT_LE(trunc_mul(a, b, 10), a * b);
  }
}

TEST(TruncMul, MonotonicInTruncation) {
  common::Xoshiro256 rng(55);
  for (int i = 0; i < 50000; ++i) {
    const float a = static_cast<float>(rng.uniform(1.0, 2.0));
    const float b = static_cast<float>(rng.uniform(1.0, 2.0));
    float prev = trunc_mul(a, b, 0);
    for (int tr : {4, 8, 16, 23}) {
      const float cur = trunc_mul(a, b, tr);
      ASSERT_LE(cur, prev);  // more truncation only removes low bits
      prev = cur;
    }
  }
}

TEST(TruncMul, SpecialsAndSigns) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isnan(trunc_mul(std::nanf(""), 1.0f, 4)));
  EXPECT_TRUE(std::isnan(trunc_mul(inf, 0.0f, 4)));
  EXPECT_EQ(trunc_mul(inf, 2.0f, 4), inf);
  EXPECT_EQ(trunc_mul(-2.0f, 3.0f, 4) > 0.0f, false);
  EXPECT_EQ(trunc_mul(0.0f, 7.0f, 4), 0.0f);
}

TEST(TruncMul, DoublePrecisionSweep) {
  common::Xoshiro256 rng(56);
  for (int tr : {44, 48, 49}) {
    const double bound = std::ldexp(1.0, tr - 52) + 1e-12;
    for (int i = 0; i < 100000; ++i) {
      const double a = rng.uniform(1.0, 2.0);
      const double b = rng.uniform(1.0, 2.0);
      ASSERT_LE(std::fabs(trunc_mul(a, b, tr) - a * b) / (a * b), bound);
    }
  }
}

}  // namespace
}  // namespace ihw
