// Tests for the memoizing sweep engine (DESIGN.md §11): canonical
// fingerprints, the two-layer evaluation cache, the parallel grid driver,
// shared-stream characterization grids, and the Shared<T> baseline holder.
#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

#include "error/characterize.h"
#include "fault/spec.h"
#include "runtime/parallel.h"
#include "sweep/cache.h"
#include "sweep/fingerprint.h"
#include "sweep/json.h"
#include "sweep/shared.h"
#include "sweep/sweep.h"

namespace ihw::sweep {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_stats_identical(const error::ErrorStats& a,
                            const error::ErrorStats& b) {
  const auto sa = a.state(), sb = b.state();
  EXPECT_EQ(sa.samples, sb.samples);
  EXPECT_EQ(sa.errors, sb.errors);
  EXPECT_EQ(sa.rel_samples, sb.rel_samples);
  EXPECT_EQ(bits(sa.max_rel), bits(sb.max_rel));
  EXPECT_EQ(bits(sa.sum_rel), bits(sb.sum_rel));
  EXPECT_EQ(bits(sa.sum_abs), bits(sb.sum_abs));
  EXPECT_EQ(bits(sa.max_abs), bits(sb.max_abs));
}

void expect_pmf_identical(const error::ErrorPmf& a, const error::ErrorPmf& b) {
  const auto pa = a.state(), pb = b.state();
  EXPECT_EQ(pa.min_bucket, pb.min_bucket);
  EXPECT_EQ(pa.max_bucket, pb.max_bucket);
  EXPECT_EQ(pa.samples, pb.samples);
  EXPECT_EQ(pa.zero_error, pb.zero_error);
  EXPECT_EQ(pa.counts, pb.counts);
}

void expect_char_identical(const error::CharResult& a,
                           const error::CharResult& b) {
  EXPECT_EQ(a.label, b.label);
  expect_stats_identical(a.stats, b.stats);
  expect_pmf_identical(a.pmf, b.pmf);
}

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, StableAcrossInvocations) {
  const IhwConfig cfg = IhwConfig::all_imprecise();
  EXPECT_EQ(config_fingerprint(cfg), config_fingerprint(cfg));
  const Workload w{"hotspot", {{"rows", 64.0}, {"cols", 64.0}}, 7, 1000};
  EXPECT_EQ(w.fingerprint(&cfg), w.fingerprint(&cfg));
  EXPECT_EQ(w.fingerprint(), w.fingerprint());
  EXPECT_NE(w.fingerprint(&cfg), w.fingerprint());
}

TEST(Fingerprint, SensitiveToEveryConfigKnob) {
  const IhwConfig base = IhwConfig::all_imprecise();
  const std::uint64_t fp0 = config_fingerprint(base);

  IhwConfig c = base;
  c.add_th = base.add_th + 1;
  EXPECT_NE(config_fingerprint(c), fp0);

  c = base;
  c.rsqrt_enabled = !base.rsqrt_enabled;
  EXPECT_NE(config_fingerprint(c), fp0);

  c = base;
  c.mul_trunc = base.mul_trunc + 1;
  EXPECT_NE(config_fingerprint(c), fp0);

  c = base;
  c.faults = fault::FaultConfig::uniform(1e-4, 1);
  EXPECT_NE(config_fingerprint(c), fp0);

  // The fault seed alone must change the fingerprint: the injected-fault
  // stream (and so the cached counters) depends on it.
  IhwConfig c2 = base;
  c2.faults = fault::FaultConfig::uniform(1e-4, 2);
  EXPECT_NE(config_fingerprint(c2), config_fingerprint(c));

  c = base;
  c.guard.enabled = true;
  EXPECT_NE(config_fingerprint(c), fp0);

  c = base;
  c.guard.enabled = true;
  c.guard.retry_epoch = true;
  IhwConfig c3 = base;
  c3.guard.enabled = true;
  EXPECT_NE(config_fingerprint(c), config_fingerprint(c3));
}

TEST(Fingerprint, SensitiveToWorkloadIdentity) {
  const Workload w{"hotspot", {{"rows", 64.0}}, 7, 1000};
  Workload x = w;
  x.name = "srad";
  EXPECT_NE(x.fingerprint(), w.fingerprint());
  x = w;
  x.params[0].second = 65.0;
  EXPECT_NE(x.fingerprint(), w.fingerprint());
  x = w;
  x.seed = 8;
  EXPECT_NE(x.fingerprint(), w.fingerprint());
  x = w;
  x.samples = 1001;
  EXPECT_NE(x.fingerprint(), w.fingerprint());
}

TEST(Fingerprint, TypeTagsPreventFieldAliasing) {
  // An empty string then 1 must not collide with "x" then 0, etc.
  Fingerprint a;
  a.mix_str("");
  a.mix_u64(1);
  Fingerprint b;
  b.mix_str("\x01");
  b.mix_u64(0);
  EXPECT_NE(a.digest(), b.digest());

  // -0.0 and 0.0 are distinct inputs (bit-pattern hashing).
  Fingerprint p, q;
  p.mix_double(0.0);
  q.mix_double(-0.0);
  EXPECT_NE(p.digest(), q.digest());
}

// --------------------------------------------------------------------- cache

EvalRecord sample_record() {
  EvalRecord rec;
  rec.set_metric("mae", 0.1234567890123456789);
  rec.set_metric("tiny", 5e-324);   // denormal round trip
  rec.set_metric("neg_zero", -0.0);
  rec.set_metric("inf", std::numeric_limits<double>::infinity());
  rec.perf.counts[0] = 42;
  rec.faults.injected[0] = 7;
  rec.faults.retried_epochs = 3;
  rec.has_char = true;
  rec.chr = error::characterize32(error::UnitKind::FpMul, 0, 10'000);
  return rec;
}

void expect_record_identical(const EvalRecord& a, const EvalRecord& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].first, b.metrics[i].first);
    EXPECT_EQ(bits(a.metrics[i].second), bits(b.metrics[i].second));
  }
  EXPECT_EQ(a.perf.counts, b.perf.counts);
  EXPECT_EQ(a.faults.injected, b.faults.injected);
  EXPECT_EQ(a.faults.guard_trips, b.faults.guard_trips);
  EXPECT_EQ(a.faults.degraded_epochs, b.faults.degraded_epochs);
  EXPECT_EQ(a.faults.run_degradations, b.faults.run_degradations);
  EXPECT_EQ(a.faults.retried_epochs, b.faults.retried_epochs);
  ASSERT_EQ(a.has_char, b.has_char);
  if (a.has_char) expect_char_identical(a.chr, b.chr);
}

TEST(EvalCache, SerializeRoundTripIsBitExact) {
  const EvalRecord rec = sample_record();
  const std::string text = EvalCache::serialize(0xdeadbeefcafe1234ull, rec);
  EvalRecord back;
  ASSERT_TRUE(EvalCache::deserialize(text, 0xdeadbeefcafe1234ull, &back));
  expect_record_identical(rec, back);
  // A record is bound to its fingerprint.
  EXPECT_FALSE(EvalCache::deserialize(text, 0x1111ull, &back));
}

TEST(EvalCache, InMemoryHitAndMissCounters) {
  EvalCache cache;
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.store(1, sample_record());
  const auto rec = cache.lookup(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stores(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u);
}

TEST(EvalCache, DiskLayerPersistsAcrossInstances) {
  const std::string dir = testing::TempDir() + "ihw_sweep_disk";
  std::filesystem::remove_all(dir);
  const EvalRecord rec = sample_record();
  {
    EvalCache cache(dir);
    cache.store(99, rec);
  }
  EvalCache fresh(dir);
  const auto back = fresh.lookup(99);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(fresh.disk_hits(), 1u);
  expect_record_identical(rec, *back);
  std::filesystem::remove_all(dir);
}

TEST(EvalCache, SchemaTagChangeInvalidatesDiskRecords) {
  const std::string dir = testing::TempDir() + "ihw_sweep_schema";
  std::filesystem::remove_all(dir);
  {
    EvalCache cache(dir, "schema-a");
    cache.store(5, sample_record());
  }
  EvalCache bumped(dir, "schema-b");
  EXPECT_FALSE(bumped.lookup(5).has_value());  // orphaned, not misread
  EvalCache same(dir, "schema-a");
  EXPECT_TRUE(same.lookup(5).has_value());
  std::filesystem::remove_all(dir);
}

TEST(EvalCache, SeedChangeMissesBecauseFingerprintDiffers) {
  // The invalidation path for input changes is the fingerprint itself: a
  // different fault seed yields a different key, so the old record is
  // simply never consulted.
  const std::string dir = testing::TempDir() + "ihw_sweep_seed";
  std::filesystem::remove_all(dir);
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = fault::FaultConfig::uniform(1e-3, 1);
  const Workload w{"app", {}, 0, 0};
  EvalCache cache(dir);
  cache.store(w.fingerprint(&cfg), sample_record());
  cfg.faults = fault::FaultConfig::uniform(1e-3, 2);
  EXPECT_FALSE(cache.lookup(w.fingerprint(&cfg)).has_value());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------------ run_grid

std::vector<GridPoint> counted_points(std::atomic<int>& evals) {
  std::vector<GridPoint> pts;
  for (int i = 0; i < 6; ++i) {
    pts.push_back({static_cast<std::uint64_t>(100 + i), [&evals, i] {
                     evals.fetch_add(1);
                     EvalRecord rec;
                     rec.set_metric("value", i * 1.5);
                     return rec;
                   }});
  }
  return pts;
}

TEST(RunGrid, ThreadCountInvariant) {
  std::atomic<int> evals{0};
  const auto serial = run_grid(counted_points(evals), nullptr, 1);
  const auto parallel = run_grid(counted_points(evals), nullptr, 4);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i)
    expect_record_identical(serial.records[i], parallel.records[i]);
}

TEST(RunGrid, EqualFingerprintsEvaluateOnce) {
  std::atomic<int> evals{0};
  std::vector<GridPoint> pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back({777, [&evals] {
                     evals.fetch_add(1);
                     EvalRecord rec;
                     rec.set_metric("v", 1.0);
                     return rec;
                   }});
  }
  const auto out = run_grid(pts, nullptr, 4);
  EXPECT_EQ(evals.load(), 1);
  for (const auto& rec : out.records)
    EXPECT_EQ(bits(rec.metric("v")), bits(1.0));
}

TEST(RunGrid, CacheHitsSkipEvaluation) {
  EvalCache cache;
  std::atomic<int> evals{0};
  const auto cold = run_grid(counted_points(evals), &cache, 2);
  EXPECT_EQ(evals.load(), 6);
  for (const char h : cold.cache_hit) EXPECT_EQ(h, 0);

  const auto warm = run_grid(counted_points(evals), &cache, 2);
  EXPECT_EQ(evals.load(), 6);  // nothing re-evaluated
  for (const char h : warm.cache_hit) EXPECT_EQ(h, 1);
  for (std::size_t i = 0; i < warm.records.size(); ++i)
    expect_record_identical(cold.records[i], warm.records[i]);
}

// ------------------------------------------------- shared-stream char grids

TEST(CharGrid, BitIdenticalToStandalone32) {
  // Covers every generation recipe: the +-12 exponent-spread adder, the
  // shared dims-4 pool (with an exact-Mul reference shared by the multiplier
  // variants), the Exp2 segment, and the ternary Fma.
  const std::uint64_t n = 50'000;
  const std::vector<CharPoint> pts = {
      {error::UnitKind::FpAdd, 0, n},    {error::UnitKind::FpMul, 0, n},
      {error::UnitKind::AcfpLog, 7, n},  {error::UnitKind::BitTrunc, 11, n},
      {error::UnitKind::Rcp, 0, n},      {error::UnitKind::Log2, 0, n},
      {error::UnitKind::Exp2, 0, n},     {error::UnitKind::Fma, 0, n},
  };
  const auto grid = characterize_grid32(pts, nullptr);
  ASSERT_EQ(grid.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto solo = error::characterize32(pts[i].kind, pts[i].param, n);
    expect_char_identical(grid[i], solo);
  }
}

TEST(CharGrid, BitIdenticalToStandalone64) {
  const std::uint64_t n = 30'000;
  const std::vector<CharPoint> pts = {
      {error::UnitKind::AcfpFull, 21, n},
      {error::UnitKind::AcfpLog, 21, n},
      {error::UnitKind::FpAdd, 0, n},
  };
  const auto grid = characterize_grid64(pts, nullptr);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto solo = error::characterize64(pts[i].kind, pts[i].param, n);
    expect_char_identical(grid[i], solo);
  }
}

TEST(CharGrid, ThreadCountInvariant) {
  const std::uint64_t n = 40'000;
  const std::vector<CharPoint> pts = {{error::UnitKind::FpMul, 0, n},
                                      {error::UnitKind::Rsqrt, 0, n}};
  runtime::ScopedThreads one(1);
  const auto serial = characterize_grid32(pts, nullptr);
  runtime::ScopedThreads four(4);
  const auto parallel = characterize_grid32(pts, nullptr);
  for (std::size_t i = 0; i < pts.size(); ++i)
    expect_char_identical(serial[i], parallel[i]);
}

TEST(CharGrid, WarmCacheReplaysBitExactly) {
  const std::uint64_t n = 20'000;
  const std::vector<CharPoint> pts = {{error::UnitKind::Sqrt, 0, n},
                                      {error::UnitKind::FpDiv, 0, n}};
  EvalCache cache;
  std::vector<char> hits;
  const auto cold = characterize_grid32(pts, &cache, &hits);
  EXPECT_EQ(hits, (std::vector<char>{0, 0}));
  const auto warm = characterize_grid32(pts, &cache, &hits);
  EXPECT_EQ(hits, (std::vector<char>{1, 1}));
  for (std::size_t i = 0; i < pts.size(); ++i)
    expect_char_identical(cold[i], warm[i]);
}

// -------------------------------------------------------------------- shared

TEST(Shared, ComputedExactlyOnceUnderConcurrency) {
  std::atomic<int> builds{0};
  Shared<int> value([&] {
    builds.fetch_add(1);
    return 41 + 1;
  });
  EXPECT_FALSE(value.ready());
  runtime::parallel_tasks(16, [&](std::size_t) { EXPECT_EQ(value.get(), 42); },
                          4);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_TRUE(value.ready());
}

// ---------------------------------------------------------------------- json

TEST(Json, EscapesAndRoundTripNumbers) {
  Json doc = Json::object();
  doc.set("name", "a\"b\\c\nd")
      .set("pi", 3.141592653589793)
      .set("big", std::uint64_t{18446744073709551615ull})
      .set("flag", true)
      .set("rows", Json::array().push(1).push(2.5));
  const std::string text = doc.dump();
  EXPECT_EQ(text,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"pi\":3.1415926535897931,"
            "\"big\":18446744073709551615,\"flag\":true,\"rows\":[1,2.5]}");
}

}  // namespace
}  // namespace ihw::sweep
