// Integration tests across the application workloads: reference behaviour,
// precise-SimFloat equivalence with plain float, counter sanity, and
// quality expectations per benchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/art.h"
#include "apps/cp.h"
#include "apps/gromacs.h"
#include "apps/hotspot.h"
#include "apps/ray.h"
#include "apps/runner.h"
#include "apps/sphinx.h"
#include "apps/srad.h"
#include "quality/grid_metrics.h"
#include "quality/ssim.h"

namespace ihw::apps {
namespace {

// --- HotSpot ---------------------------------------------------------------

TEST(Hotspot, PreciseSimFloatMatchesPlainFloatBitExactly) {
  HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 10;
  p.steady_init = false;
  const auto in = make_hotspot_input(p, 7);
  const auto ref = run_hotspot<float>(p, in);
  gpu::FpContext ctx(IhwConfig::precise());
  gpu::ScopedContext scope(ctx);
  const auto sim = run_hotspot<gpu::SimFloat>(p, in);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref.data()[i], sim.data()[i]);
}

TEST(Hotspot, CountersMatchKernelStructure) {
  HotspotParams p;
  p.rows = p.cols = 32;
  p.iterations = 3;
  p.steady_init = false;
  const auto in = make_hotspot_input(p, 7);
  const auto counters = run_with_config(
      IhwConfig::precise(), [&] { run_hotspot<gpu::SimFloat>(p, in); });
  const std::uint64_t cells = 32ull * 32 * 3;
  EXPECT_EQ(counters[gpu::OpClass::FAdd], 9 * cells);
  EXPECT_EQ(counters[gpu::OpClass::FMul], 5 * cells);
  EXPECT_EQ(counters[gpu::OpClass::FRcp], 3 * cells);
  EXPECT_EQ(counters[gpu::OpClass::Load], 6 * cells);
  EXPECT_EQ(counters[gpu::OpClass::Store], cells);
}

TEST(Hotspot, SteadyStateInitIsNearEquilibrium) {
  HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 20;
  const auto in = make_hotspot_input(p, 7);
  const auto after = run_hotspot<float>(p, in);
  // Running further from steady state must barely move the field.
  EXPECT_LT(quality::mae(in.temp, after), 0.05);
}

TEST(Hotspot, AllImpreciseKeepsQualityNegligible) {
  HotspotParams p;
  p.rows = p.cols = 128;
  p.iterations = 30;
  const auto in = make_hotspot_input(p, 7);
  const auto ref = run_hotspot<float>(p, in);
  gpu::FpContext ctx(IhwConfig::all_imprecise());
  gpu::ScopedContext scope(ctx);
  const auto imp = run_hotspot<gpu::SimFloat>(p, in);
  EXPECT_LT(quality::mae(ref, imp), 0.2);   // paper: 0.05 K
  EXPECT_LT(quality::wed(ref, imp), 2.0);
}

TEST(Hotspot, TemperaturesStayPhysical) {
  HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 30;
  const auto in = make_hotspot_input(p, 9);
  const auto out = run_hotspot<float>(p, in);
  for (float v : out) {
    ASSERT_GT(v, 300.0f);
    ASSERT_LT(v, 420.0f);
  }
}

TEST(Hotspot, TiledKernelBitExactMatchesPlainKernel) {
  // The shared-memory-tiled variant performs identical arithmetic; only the
  // memory path differs. Outputs must agree bit-for-bit under every config.
  HotspotParams p;
  p.rows = p.cols = 96;
  p.iterations = 8;
  p.steady_init = false;
  const auto in = make_hotspot_input(p, 7);
  for (const auto& cfg :
       {IhwConfig::precise(), IhwConfig::all_imprecise()}) {
    gpu::FpContext ctx(cfg);
    gpu::ScopedContext scope(ctx);
    const auto plain = run_hotspot<gpu::SimFloat>(p, in);
    const auto tiled = run_hotspot_tiled<gpu::SimFloat>(p, in);
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain.data()[i], tiled.data()[i]) << cfg.describe();
  }
}

TEST(Hotspot, TilingCutsGlobalLoadsRoughlyFourfold) {
  HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 4;
  p.steady_init = false;
  const auto in = make_hotspot_input(p, 7);
  const auto plain = run_with_config(
      IhwConfig::precise(), [&] { run_hotspot<gpu::SimFloat>(p, in); });
  const auto tiled = run_with_config(
      IhwConfig::precise(), [&] { run_hotspot_tiled<gpu::SimFloat>(p, in); });
  // Same arithmetic...
  EXPECT_EQ(plain[gpu::OpClass::FAdd], tiled[gpu::OpClass::FAdd]);
  EXPECT_EQ(plain[gpu::OpClass::FMul], tiled[gpu::OpClass::FMul]);
  EXPECT_EQ(plain[gpu::OpClass::FRcp], tiled[gpu::OpClass::FRcp]);
  // ...but far fewer global loads: ~(1 + halo/B + power) vs 6 per cell.
  EXPECT_LT(tiled[gpu::OpClass::Load] * 5, plain[gpu::OpClass::Load] * 2);
}

// --- SRAD ------------------------------------------------------------------

TEST(Srad, DiffusionReducesSpeckleVariance) {
  SradParams p;
  p.rows = p.cols = 96;
  p.iterations = 40;
  p.roi_r1 = p.roi_c1 = 20;
  const auto in = make_srad_input(p, 11);
  const auto out = run_srad<float>(p, in.image);
  auto variance = [](const common::GridF& g) {
    double s = 0, s2 = 0;
    for (float v : g) {
      s += v;
      s2 += static_cast<double>(v) * v;
    }
    const double m = s / static_cast<double>(g.size());
    return s2 / static_cast<double>(g.size()) - m * m;
  };
  EXPECT_LT(variance(out), variance(in.image) * 0.8);
}

TEST(Srad, ImprovesPrattFomOverRawImage) {
  SradParams p;
  p.rows = p.cols = 128;
  p.iterations = 60;
  p.roi_r1 = p.roi_c1 = 24;
  const auto in = make_srad_input(p, 11);
  const auto out = run_srad<float>(p, in.image);
  EXPECT_GT(srad_pratt_fom(out, in.ideal_edges),
            srad_pratt_fom(in.image, in.ideal_edges));
}

TEST(Srad, ImpreciseTracksPreciseFom) {
  SradParams p;
  p.rows = p.cols = 96;
  p.iterations = 40;
  p.roi_r1 = p.roi_c1 = 20;
  const auto in = make_srad_input(p, 11);
  const auto ref = run_srad<float>(p, in.image);
  gpu::FpContext ctx(IhwConfig::all_imprecise());
  gpu::ScopedContext scope(ctx);
  const auto imp = run_srad<gpu::SimFloat>(p, in.image);
  const double f_ref = srad_pratt_fom(ref, in.ideal_edges);
  const double f_imp = srad_pratt_fom(imp, in.ideal_edges);
  EXPECT_GT(f_imp, f_ref * 0.7);  // paper: 0.20 vs 0.23 (comparable)
}

TEST(Srad, DiffusionCoefficientStaysInUnitRange) {
  // Indirect check: output intensities remain within the input range
  // (diffusion cannot create new extrema when c in [0,1]).
  SradParams p;
  p.rows = p.cols = 64;
  p.iterations = 30;
  p.roi_r1 = p.roi_c1 = 16;
  const auto in = make_srad_input(p, 12);
  const auto out = run_srad<float>(p, in.image);
  float in_lo = 1e9f, in_hi = -1e9f;
  for (float v : in.image) {
    in_lo = std::min(in_lo, v);
    in_hi = std::max(in_hi, v);
  }
  for (float v : out) {
    ASSERT_GE(v, in_lo - 1.0f);
    ASSERT_LE(v, in_hi + 1.0f);
  }
}

TEST(Srad, TiledKernelBitExactMatchesPlainKernel) {
  SradParams p;
  p.rows = p.cols = 96;
  p.iterations = 10;
  p.roi_r1 = p.roi_c1 = 20;
  const auto in = make_srad_input(p, 11);
  for (const auto& cfg : {IhwConfig::precise(), IhwConfig::all_imprecise()}) {
    gpu::FpContext ctx(cfg);
    gpu::ScopedContext scope(ctx);
    const auto plain = run_srad<gpu::SimFloat>(p, in.image);
    const auto tiled = run_srad_tiled<gpu::SimFloat>(p, in.image);
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain.data()[i], tiled.data()[i]) << cfg.describe();
  }
}

TEST(Srad, TilingReducesDerivativeKernelLoads) {
  SradParams p;
  p.rows = p.cols = 64;
  p.iterations = 4;
  p.roi_r1 = p.roi_c1 = 16;
  const auto in = make_srad_input(p, 11);
  const auto plain = run_with_config(
      IhwConfig::precise(), [&] { run_srad<gpu::SimFloat>(p, in.image); });
  const auto tiled = run_with_config(
      IhwConfig::precise(), [&] { run_srad_tiled<gpu::SimFloat>(p, in.image); });
  EXPECT_EQ(plain[gpu::OpClass::FMul], tiled[gpu::OpClass::FMul]);
  EXPECT_EQ(plain[gpu::OpClass::FRcp], tiled[gpu::OpClass::FRcp]);
  EXPECT_LT(tiled[gpu::OpClass::Load], plain[gpu::OpClass::Load]);
}

// --- RayTracing -------------------------------------------------------------

TEST(Ray, DeterministicAndPreciseSimMatchesFloat) {
  RayParams p;
  p.width = p.height = 64;
  const auto a = render_ray<float>(p);
  const auto b = render_ray<float>(p);
  EXPECT_EQ(a.pixels, b.pixels);
  gpu::FpContext ctx(IhwConfig::precise());
  gpu::ScopedContext scope(ctx);
  const auto c = render_ray<gpu::SimFloat>(p);
  EXPECT_EQ(a.pixels, c.pixels);
}

TEST(Ray, QualityOrderingAcrossConfigs) {
  RayParams p;
  p.width = p.height = 96;
  const auto ref = render_ray<float>(p);
  auto render_cfg = [&](const IhwConfig& cfg) {
    gpu::FpContext ctx(cfg);
    gpu::ScopedContext scope(ctx);
    return render_ray<gpu::SimFloat>(p);
  };
  const double s_cons = quality::ssim_rgb(ref, render_cfg(IhwConfig::ray_conservative()));
  const double s_rsqrt = quality::ssim_rgb(ref, render_cfg(IhwConfig::ray_with_rsqrt()));
  auto simple = IhwConfig::ray_conservative();
  simple.mul_mode = MulMode::ImpreciseSimple;
  const double s_simple = quality::ssim_rgb(ref, render_cfg(simple));
  const double s_full = quality::ssim_rgb(ref, render_cfg(IhwConfig::ray_with_full_path_mul(0)));
  // The paper's orderings (Figs. 17-18).
  EXPECT_GT(s_cons, s_rsqrt);
  EXPECT_GT(s_full, s_simple);
  EXPECT_GT(s_cons, 0.6);
  EXPECT_LT(s_simple, s_cons);
}

TEST(Ray, CountsSfuAndMemoryWork) {
  RayParams p;
  p.width = p.height = 32;
  const auto counters = run_with_config(IhwConfig::precise(),
                                        [&] { render_ray<gpu::SimFloat>(p); });
  EXPECT_GT(counters[gpu::OpClass::FRsqrt], 0u);
  EXPECT_GT(counters[gpu::OpClass::FSqrt], 0u);
  EXPECT_GT(counters[gpu::OpClass::FRcp], 0u);
  EXPECT_GT(counters[gpu::OpClass::FMul], counters[gpu::OpClass::FSqrt]);
  EXPECT_EQ(counters[gpu::OpClass::Store], 32u * 32 * 3);
  EXPECT_GT(counters[gpu::OpClass::Load], 0u);
}

// --- CP ----------------------------------------------------------------------

TEST(Cp, PotentialSignsFollowCharges) {
  CpParams p;
  p.grid = 32;
  p.natoms = 1;
  std::vector<CpAtom> atoms{{0.8f, 0.8f, 0.1f, 1.0f}};
  const auto grid = run_cp<float>(p, atoms);
  for (float v : grid) ASSERT_GT(v, 0.0f);
  atoms[0].q = -1.0f;
  const auto neg = run_cp<float>(p, atoms);
  for (float v : neg) ASSERT_LT(v, 0.0f);
}

TEST(Cp, PotentialDecaysWithDistance) {
  CpParams p;
  p.grid = 64;
  std::vector<CpAtom> atoms{{0.0f, 0.0f, 0.0f, 1.0f}};
  const auto grid = run_cp<float>(p, atoms);
  EXPECT_GT(grid(0, 0), grid(32, 32));
  EXPECT_GT(grid(16, 16), grid(48, 48));
}

TEST(Cp, CoordinateMulsStayPreciseUnderImpreciseConfig) {
  // With an imprecise multiplier, grid MAE must stay small relative to the
  // dynamic range because coordinates (and rsqrt) remain exact.
  CpParams p;
  p.grid = 48;
  p.natoms = 64;
  const auto atoms = make_cp_atoms(p, 3);
  const auto ref = run_cp<float>(p, atoms);
  gpu::FpContext ctx(IhwConfig::mul_only(MulMode::MitchellFull, 0));
  gpu::ScopedContext scope(ctx);
  const auto imp = run_cp<gpu::SimFloat>(p, atoms);
  float lo = 1e9f, hi = -1e9f;
  for (float v : ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(quality::mae(ref, imp) / (hi - lo), 0.01);
}

// --- ART ----------------------------------------------------------------------

TEST(Art, PreciseRecognitionFindsEmbeddedObject) {
  ArtParams p;
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    const auto in = make_art_input(p, seed);
    const auto r = run_art<double>(p, in);
    EXPECT_TRUE(r.correct) << "seed " << seed;
    EXPECT_GT(r.vigilance, 0.9);
    EXPECT_LE(r.vigilance, 1.05);
  }
}

TEST(Art, VigilanceDegradesGracefullyOnAcPaths) {
  ArtParams p;
  const auto in = make_art_input(p, 5);
  const double ref = run_art<double>(p, in).vigilance;
  auto vig = [&](MulMode m, int tr) {
    gpu::FpContext ctx(IhwConfig::mul_only(m, tr));
    gpu::ScopedContext scope(ctx);
    return run_art<gpu::SimDouble>(p, in).vigilance;
  };
  // Full path at heavy truncation stays within a few percent of precise.
  EXPECT_NEAR(vig(MulMode::MitchellFull, 44), ref, 0.05);
  // Deeper truncation degrades monotonically-ish but stays above 0.8
  // at the paper's 26X-equivalent operating points.
  EXPECT_GT(vig(MulMode::MitchellFull, 48), 0.8);
  EXPECT_GT(vig(MulMode::MitchellLog, 48), 0.8);
}

// --- gromacs-like MD ----------------------------------------------------------

TEST(Md, EnergyIsConservedApproximately) {
  MdParams p;
  p.steps = 60;
  const auto st = make_md_state(p, 9);
  const auto r = run_md<double>(p, st);
  // Velocity Verlet at this dt: total energy drift well under a few percent
  // of the kinetic scale.
  EXPECT_TRUE(std::isfinite(r.avg_potential));
  EXPECT_GT(r.avg_kinetic, 0.0);
  EXPECT_LT(std::fabs(r.final_potential - r.avg_potential),
            0.2 * std::fabs(r.avg_potential));
}

TEST(Md, DeterministicGivenSeed) {
  MdParams p;
  p.steps = 30;
  const auto st = make_md_state(p, 9);
  EXPECT_DOUBLE_EQ(run_md<double>(p, st).avg_potential,
                   run_md<double>(p, st).avg_potential);
}

TEST(Md, FullPathWithinSpecToleranceAtModerateTruncation) {
  MdParams p;
  p.steps = 60;
  const auto st = make_md_state(p, 9);
  const auto ref = run_md<double>(p, st);
  gpu::FpContext ctx(IhwConfig::mul_only(MulMode::MitchellFull, 40));
  gpu::ScopedContext scope(ctx);
  const auto imp = run_md<gpu::SimDouble>(p, st);
  const double err = std::fabs(imp.avg_potential - ref.avg_potential) /
                     std::fabs(ref.avg_potential);
  EXPECT_LT(err, 0.0125);  // the SPEC 1.25% line
}

// --- sphinx-like recognizer ----------------------------------------------------

TEST(Sphinx, PreciseRecognizesEveryWord) {
  SphinxParams p;
  const auto corpus = make_sphinx_corpus(p, 42);
  const auto r = run_sphinx<double>(p, corpus);
  EXPECT_EQ(r.correct, p.vocab);
  EXPECT_EQ(r.total, p.vocab);
  for (int i = 0; i < p.vocab; ++i)
    EXPECT_EQ(r.recognized[static_cast<std::size_t>(i)], i);
}

TEST(Sphinx, TableSevenShapeHolds) {
  SphinxParams p;
  const auto corpus = make_sphinx_corpus(p, 42);
  auto correct = [&](MulMode m, int tr) {
    gpu::FpContext ctx(IhwConfig::mul_only(m, tr));
    gpu::ScopedContext scope(ctx);
    return run_sphinx<gpu::SimDouble>(p, corpus).correct;
  };
  // bt robust through 48 bits, drops by 49; fp at least as good as bt at 44;
  // lp strictly worse than fp at 44.
  EXPECT_GE(correct(MulMode::BitTruncated, 46), 24);
  EXPECT_LT(correct(MulMode::BitTruncated, 49), 25);
  EXPECT_GE(correct(MulMode::MitchellFull, 44), 24);
  EXPECT_LT(correct(MulMode::MitchellLog, 44),
            correct(MulMode::MitchellFull, 44));
}

TEST(Sphinx, CorpusShapesAreConsistent) {
  SphinxParams p;
  const auto corpus = make_sphinx_corpus(p, 1);
  ASSERT_EQ(corpus.models.size(), static_cast<std::size_t>(p.vocab));
  ASSERT_EQ(corpus.utterances.size(), static_cast<std::size_t>(p.vocab));
  for (const auto& m : corpus.models) {
    EXPECT_EQ(m.mean.size(), static_cast<std::size_t>(p.states * p.dims));
    EXPECT_EQ(m.inv_var.size(), m.mean.size());
    for (double iv : m.inv_var) EXPECT_GT(iv, 0.0);
  }
  for (const auto& u : corpus.utterances)
    EXPECT_EQ(u.size(), static_cast<std::size_t>(p.frames * p.dims));
}

// --- runner / framework glue ---------------------------------------------------

TEST(Runner, AnalyzeProducesConsistentReport) {
  gpu::PerfCounters c;
  c.bump(gpu::OpClass::FAdd, 1u << 20);
  c.bump(gpu::OpClass::FMul, 1u << 20);
  c.bump(gpu::OpClass::FRcp, 1u << 18);
  c.bump(gpu::OpClass::Load, 1u << 19);
  const auto rep = analyze_gpu_run(c, IhwConfig::all_imprecise());
  EXPECT_GT(rep.breakdown.total_w, 0.0);
  EXPECT_GT(rep.savings.system_power_impr, 0.0);
  EXPECT_LE(rep.savings.system_power_impr, rep.breakdown.arith_share() + 1e-9);
  EXPECT_NEAR(rep.savings.system_power_impr,
              rep.breakdown.fpu_share() * rep.savings.fpu_power_impr +
                  rep.breakdown.sfu_share() * rep.savings.sfu_power_impr,
              1e-9);
}

TEST(Runner, RunWithConfigInstallsAndCollects) {
  const auto counters = run_with_config(IhwConfig::precise(), [] {
    gpu::SimFloat a(1.0f), b(2.0f);
    (void)(a + b);
    (void)(a * b);
  });
  EXPECT_EQ(counters[gpu::OpClass::FAdd], 1u);
  EXPECT_EQ(counters[gpu::OpClass::FMul], 1u);
  EXPECT_EQ(gpu::FpContext::current(), nullptr);
}

}  // namespace
}  // namespace ihw::apps
