// Tests for Mitchell's-algorithm fixed-point multiplication: the 11.11%
// bound (eq. 12 / Ch. 4.1.2), stage-level trace checks, and exactness on
// power-of-two operands where the log approximation is error-free.
#include "arith/mitchell.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "qmc/sobol.h"

namespace ihw::arith {
namespace {

double rel_err(std::uint64_t a, std::uint64_t b) {
  const u128 exact = exact_mul(a, b);
  const u128 approx = mitchell_mul(a, b);
  EXPECT_LE(approx, exact) << "Mitchell must underestimate";
  return static_cast<double>(exact - approx) / static_cast<double>(exact);
}

TEST(Mitchell, ZeroOperandsGiveZero) {
  EXPECT_EQ(mitchell_mul(0, 5), 0u);
  EXPECT_EQ(mitchell_mul(7, 0), 0u);
  EXPECT_EQ(mitchell_mul(0, 0), 0u);
}

TEST(Mitchell, PowersOfTwoAreExact) {
  for (int i = 0; i <= 30; ++i)
    for (int j = 0; j <= 30; ++j)
      EXPECT_EQ(mitchell_mul(1ull << i, 1ull << j), exact_mul(1ull << i, 1ull << j));
}

TEST(Mitchell, OnePowerOfTwoOperandIsExact) {
  // With one zero fraction, both piecewise segments are linear exactly.
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = (rng() >> 44) | 1;
    const int k = static_cast<int>(rng() % 20);
    EXPECT_EQ(mitchell_mul(a, 1ull << k), exact_mul(a, 1ull << k));
  }
}

TEST(Mitchell, WorstCaseErrorIsOneNinthAtMidpointFractions) {
  // x1 = x2 = 0.5: D = 3 * 2^(k-1); error = 1/9.
  const double e = rel_err(3, 3);  // 3*3=9 vs approx 8
  EXPECT_NEAR(e, 1.0 / 9.0, 1e-12);
  const double e2 = rel_err(3ull << 20, 3ull << 20);
  EXPECT_NEAR(e2, 1.0 / 9.0, 1e-9);
}

TEST(Mitchell, ErrorBoundedByOneNinthRandomSweep) {
  common::Xoshiro256 rng(3);
  double max_e = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const std::uint64_t a = (rng() >> 40) | 1;
    const std::uint64_t b = (rng() >> 40) | 1;
    max_e = std::max(max_e, rel_err(a, b));
  }
  EXPECT_LE(max_e, 1.0 / 9.0 + 1e-12);
  EXPECT_GT(max_e, 0.10);  // the sweep should get close to the bound
}

TEST(Mitchell, ErrorBoundHoldsForLargeOperands) {
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = (rng() >> 11) | (1ull << 52);  // 53-bit operands
    const std::uint64_t b = (rng() >> 11) | (1ull << 52);
    EXPECT_LE(rel_err(a, b), 1.0 / 9.0 + 1e-12);
  }
}

TEST(Mitchell, Commutative) {
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = rng() >> 42;
    const std::uint64_t b = rng() >> 42;
    EXPECT_EQ(mitchell_mul(a, b), mitchell_mul(b, a));
  }
}

TEST(Mitchell, TraceReportsLeadingOnesAndCarry) {
  MitchellTrace tr;
  mitchell_mul_traced(6, 5, &tr);  // 110 * 101
  EXPECT_EQ(tr.k1, 2);
  EXPECT_EQ(tr.k2, 2);
  // x1 = 0.5, x2 = 0.25 -> no carry, product ~ 2^4 * 1.75 = 28 (exact 30).
  EXPECT_FALSE(tr.carry);
  EXPECT_EQ(static_cast<std::uint64_t>(tr.product), 28u);

  mitchell_mul_traced(7, 7, &tr);  // x1 = x2 = 0.75 -> carry
  EXPECT_TRUE(tr.carry);
  // 2^(2+2+1) * (0.75+0.75-1+1) = 32*1.5 = 48 (exact 49).
  EXPECT_EQ(static_cast<std::uint64_t>(tr.product), 48u);
}

TEST(Mitchell, MatchesEquation12Segments) {
  // No-carry segment: 2^(k1+k2) * (1 + x1 + x2).
  // a = 5 (k=2, x=0.25), b = 9 (k=3, x=0.125):
  // approx = 2^5 * (1 + 0.375) = 44; exact 45.
  EXPECT_EQ(static_cast<std::uint64_t>(mitchell_mul(5, 9)), 44u);
  // Carry segment: a = b = 15 (k=3, x=0.875):
  // approx = 2^7 * (0.875 + 0.875) = 224; exact 225.
  EXPECT_EQ(static_cast<std::uint64_t>(mitchell_mul(15, 15)), 224u);
}

TEST(Mitchell, QuasiMonteCarloBoundSweep) {
  qmc::Sobol sobol(2);
  double p[2];
  double max_e = 0.0;
  for (int i = 0; i < 200000; ++i) {
    sobol.next(p);
    const auto a = static_cast<std::uint64_t>(p[0] * (1 << 24)) | (1ull << 24);
    const auto b = static_cast<std::uint64_t>(p[1] * (1 << 24)) | (1ull << 24);
    max_e = std::max(max_e, rel_err(a, b));
  }
  EXPECT_LE(max_e, 1.0 / 9.0 + 1e-12);
  EXPECT_NEAR(max_e, 1.0 / 9.0, 0.002);  // QMC should find the worst case
}

}  // namespace
}  // namespace ihw::arith
