// Tests for the linear-approximation special function units (Table 1).
#include "ihw/sfu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ihw {
namespace {

template <typename T>
class SfuTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SfuTest, FloatTypes);

template <typename T, typename Op, typename Ref>
double sweep(Op op, Ref ref, double lo, double hi, int n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  double max_rel = 0.0;
  for (int i = 0; i < n; ++i) {
    const T x = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(lo, hi))));
    const double exact = ref(static_cast<double>(x));
    const double approx = static_cast<double>(op(x));
    max_rel = std::max(max_rel, std::fabs(approx - exact) / std::fabs(exact));
  }
  return max_rel;
}

TYPED_TEST(SfuTest, ReciprocalBoundedByTableOne) {
  using T = TypeParam;
  const double e = sweep<T>([](T x) { return ircp(x); },
                            [](double x) { return 1.0 / x; }, -20, 20, 300000, 61);
  EXPECT_LE(e, 0.0590 + 1e-4);
  EXPECT_GT(e, 0.055);  // tight
}

TYPED_TEST(SfuTest, RsqrtBoundedByTableOne) {
  using T = TypeParam;
  const double e = sweep<T>([](T x) { return irsqrt(x); },
                            [](double x) { return 1.0 / std::sqrt(x); }, -20,
                            20, 300000, 62);
  EXPECT_LE(e, 0.1112);
  EXPECT_GT(e, 0.10);
}

TYPED_TEST(SfuTest, SqrtBoundedByTableOne) {
  using T = TypeParam;
  const double e = sweep<T>([](T x) { return isqrt(x); },
                            [](double x) { return std::sqrt(x); }, -20, 20,
                            300000, 63);
  EXPECT_LE(e, 0.1112);
  EXPECT_GT(e, 0.10);
}

TYPED_TEST(SfuTest, DivisionBoundedByTableOne) {
  using T = TypeParam;
  common::Xoshiro256 rng(64);
  double max_rel = 0.0;
  for (int i = 0; i < 300000; ++i) {
    const T a = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const T b = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-10, 10))));
    const double exact = static_cast<double>(a) / static_cast<double>(b);
    const double approx = static_cast<double>(ifp_div(a, b));
    max_rel = std::max(max_rel, std::fabs(approx - exact) / std::fabs(exact));
  }
  EXPECT_LE(max_rel, 0.0590 + 1e-4);
}

TYPED_TEST(SfuTest, Log2AbsoluteErrorBoundedAwayFromOne) {
  using T = TypeParam;
  // log2's relative error is unbounded near log2(x)=0; its *absolute* error
  // is the linear-fit residual, bounded by ~0.0861 on m in [1,2)
  // (max |0.9846m - 0.9196 - log2 m|).
  common::Xoshiro256 rng(65);
  double max_abs = 0.0;
  for (int i = 0; i < 300000; ++i) {
    const T x = static_cast<T>(
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform(-30, 30))));
    const double exact = std::log2(static_cast<double>(x));
    max_abs = std::max(max_abs,
                       std::fabs(static_cast<double>(ilog2(x)) - exact));
  }
  EXPECT_LE(max_abs, 0.087);
}

TYPED_TEST(SfuTest, Log2ExponentPathIsExact) {
  using T = TypeParam;
  // For x = 2^k the approximation error is the constant fit residual at m=1.
  for (int k = -10; k <= 10; ++k) {
    const T x = static_cast<T>(std::ldexp(1.0, k));
    EXPECT_NEAR(static_cast<double>(ilog2(x)), k + (0.9846 - 0.9196), 1e-6);
  }
}

TYPED_TEST(SfuTest, RsqrtEvenOddExponentSeam) {
  using T = TypeParam;
  // The even/odd exponent split must not create discontinuity blowups at
  // power-of-two boundaries.
  for (int k = -8; k <= 8; ++k) {
    const T lo = static_cast<T>(std::ldexp(0.999999, k));
    const T hi = static_cast<T>(std::ldexp(1.000001, k));
    const double rl = static_cast<double>(irsqrt(lo));
    const double rh = static_cast<double>(irsqrt(hi));
    EXPECT_NEAR(rl, rh, 0.05 * rl);
  }
}

TYPED_TEST(SfuTest, SpecialValues) {
  using T = TypeParam;
  const T inf = std::numeric_limits<T>::infinity();
  const T nan = std::numeric_limits<T>::quiet_NaN();

  EXPECT_TRUE(std::isnan(ircp(nan)));
  EXPECT_EQ(ircp(T(0)), inf);
  EXPECT_EQ(ircp(-T(0)), -inf);
  EXPECT_EQ(ircp(inf), T(0));
  EXPECT_LT(ircp(T(-2)), T(0));

  EXPECT_TRUE(std::isnan(irsqrt(T(-1))));
  EXPECT_EQ(irsqrt(T(0)), inf);
  EXPECT_EQ(irsqrt(inf), T(0));

  EXPECT_TRUE(std::isnan(isqrt(T(-1))));
  EXPECT_EQ(isqrt(T(0)), T(0));
  EXPECT_EQ(isqrt(inf), inf);

  EXPECT_TRUE(std::isnan(ilog2(T(-1))));
  EXPECT_EQ(ilog2(T(0)), -inf);
  EXPECT_EQ(ilog2(inf), inf);

  EXPECT_TRUE(std::isnan(ifp_div(T(0), T(0))));
  EXPECT_EQ(ifp_div(T(1), T(0)), inf);
  EXPECT_EQ(ifp_div(T(-1), T(0)), -inf);
  EXPECT_EQ(ifp_div(T(1), inf), T(0));
  EXPECT_TRUE(std::isnan(ifp_div(inf, inf)));
}

TYPED_TEST(SfuTest, FmaComposesMulAndAdd) {
  using T = TypeParam;
  common::Xoshiro256 rng(66);
  for (int i = 0; i < 100000; ++i) {
    const T a = static_cast<T>(rng.uniform(0.5, 2.0));
    const T b = static_cast<T>(rng.uniform(0.5, 2.0));
    const T c = static_cast<T>(rng.uniform(0.5, 2.0));
    EXPECT_EQ(ifp_fma(a, b, c, 8), ifp_add(ifp_mul(a, b), c, 8));
  }
}

TEST(Sfu, RcpRangeReductionCoversBothMantissaHalves) {
  // Error character must be consistent at mantissa extremes:
  // x = 2^(e+1) * x', 1/x = 2^-(e+1) * (2.823 - 1.882 x').
  EXPECT_NEAR(ircp(1.0f), (2.823f - 1.882f * 0.5f) / 2.0f, 1e-5);  // x'=0.5
  const float near2 = std::nextafterf(2.0f, 0.0f);                 // x'->1
  EXPECT_NEAR(ircp(near2), (2.823f - 1.882f) / 2.0f, 1e-4);
}

TEST(Sfu, SqrtConsistentWithRsqrtIdentity) {
  // isqrt(x) = x' * irsqrt-segment, so isqrt(x)*irsqrt(x) ~ 1 within the
  // compounded bound.
  common::Xoshiro256 rng(67);
  for (int i = 0; i < 100000; ++i) {
    const float x = static_cast<float>(rng.uniform(0.01, 100.0));
    const double prod = static_cast<double>(isqrt(x)) * irsqrt(x) *
                        (1.0 / static_cast<double>(x)) * std::sqrt(x) *
                        std::sqrt(x);
    EXPECT_NEAR(prod, 1.0, 0.25);
  }
}

}  // namespace
}  // namespace ihw
