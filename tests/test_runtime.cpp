// Tests for the parallel execution runtime: thread pool, block-granular
// scheduler, the determinism contract (results and merged counters
// bit-identical to the serial path at any thread count), and the sharded
// counter merge.
#include "apps/hotspot.h"
#include "apps/runner.h"
#include "apps/srad.h"
#include "error/characterize.h"
#include "gpu/context.h"
#include "gpu/simreal.h"
#include "gpu/simt.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ihw::runtime {
namespace {

using apps::run_with_config_parallel;
using gpu::Dim3;
using gpu::FpContext;
using gpu::OpClass;
using gpu::PerfCounters;
using gpu::ScopedContext;
using gpu::SimFloat;

bool bit_identical(const common::GridF& a, const common::GridF& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ThreadPool, LazyStartAndGrowth) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), 0);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.size(), 3);
  pool.ensure_workers(2);  // never shrinks
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, ExecutesSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::atomic<int> done{0};
  for (int i = 1; i <= 100; ++i)
    pool.submit([&, i] {
      sum += i;
      ++done;
    });
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 5, 8}) {
    std::vector<int> hits(1000, 0);
    parallel_for(hits.size(), [&](std::uint64_t i) { ++hits[i]; }, threads);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << "threads=" << threads;
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::uint64_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelLaunch, MatchesSerialLaunchOutput) {
  const Dim3 grid(7, 5, 2), block(4, 3, 2);
  const std::uint64_t cells = grid.count() * block.count();
  std::vector<std::uint64_t> serial(cells, 0), par(cells, 0);

  auto body = [&](std::vector<std::uint64_t>& out) {
    return [&out, grid, block](const gpu::ThreadCtx& t) {
      const std::uint64_t b =
          (t.block_idx.z * grid.y + t.block_idx.y) * grid.x + t.block_idx.x;
      out[b * block.count() + t.linear_tid()] = b * 1000 + t.linear_tid();
    };
  };
  gpu::launch(grid, block, body(serial));
  for (int threads : {1, 2, 8}) {
    std::fill(par.begin(), par.end(), 0);
    parallel_launch(grid, block, body(par), threads);
    EXPECT_EQ(serial, par) << "threads=" << threads;
  }
}

TEST(ParallelLaunchBlocks, BarrierPhasesStaySequentialPerBlock) {
  const Dim3 grid(6, 4), block(8, 8);
  std::vector<int> phase1(grid.count() * block.count(), 0);
  parallel_launch_blocks(
      grid, block,
      [&](const gpu::BlockCtx& blk) {
        const std::uint64_t b =
            blk.block_idx().y * blk.grid_dim().x + blk.block_idx().x;
        int seen = 0;
        blk.phase([&](const gpu::ThreadCtx&) { ++seen; });
        // Barrier contract: phase 1 saw the whole block before phase 2 runs.
        blk.phase([&](const gpu::ThreadCtx& t) {
          phase1[b * block.count() + t.linear_tid()] = seen;
        });
      },
      4);
  for (int s : phase1) ASSERT_EQ(s, static_cast<int>(block.count()));
}

// Sharded counters merged in worker order must equal a single context
// counting everything (shard-then-merge == single-context property).
TEST(Counters, ShardThenMergeEqualsSingleContext) {
  constexpr int kOps = 1000;
  auto workload = [](std::uint64_t i) {
    SimFloat a(1.5f + static_cast<float>(i % 7)), b(2.5f);
    volatile float sink = (a * b + a).value();
    (void)sink;
    if (i % 3 == 0) {
      volatile float s2 = rcp(b).value();
      (void)s2;
    }
  };

  FpContext single(IhwConfig::precise());
  {
    ScopedContext scope(single);
    for (std::uint64_t i = 0; i < kOps; ++i) workload(i);
  }

  for (int threads : {2, 4, 8}) {
    FpContext sharded(IhwConfig::precise());
    {
      ScopedContext scope(sharded);
      parallel_for(kOps, workload, threads);
    }
    EXPECT_EQ(single.counters().counts, sharded.counters().counts)
        << "threads=" << threads;
  }
}

// The core determinism guarantee for HotSpot: output buffers and merged
// PerfCounters at 1, 2, and 8 threads are bit-identical to the serial path.
TEST(Determinism, HotspotBitIdenticalAcrossThreadCounts) {
  apps::HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 4;
  p.steady_init = false;  // keep the test fast; the kernel path is the same
  const auto input = make_hotspot_input(p, 7);
  const auto cfg = IhwConfig::all_imprecise();

  common::GridF ref;
  PerfCounters ref_counters = run_with_config_parallel(cfg, 1, [&] {
    ref = apps::run_hotspot<SimFloat>(p, input);
  });

  for (int threads : {2, 8}) {
    common::GridF out;
    PerfCounters c = run_with_config_parallel(cfg, threads, [&] {
      out = apps::run_hotspot<SimFloat>(p, input);
    });
    EXPECT_TRUE(bit_identical(ref, out)) << "threads=" << threads;
    EXPECT_EQ(ref_counters.counts, c.counts) << "threads=" << threads;
  }

  // The tiled (barrier-phase) variant holds to the same contract.
  common::GridF tiled_ref;
  PerfCounters tiled_counters = run_with_config_parallel(cfg, 1, [&] {
    tiled_ref = apps::run_hotspot_tiled<SimFloat>(p, input);
  });
  for (int threads : {2, 8}) {
    common::GridF out;
    PerfCounters c = run_with_config_parallel(cfg, threads, [&] {
      out = apps::run_hotspot_tiled<SimFloat>(p, input);
    });
    EXPECT_TRUE(bit_identical(tiled_ref, out)) << "threads=" << threads;
    EXPECT_EQ(tiled_counters.counts, c.counts) << "threads=" << threads;
  }
}

// Fault injection + guard preserve the determinism contract: the injector is
// a pure hash of (seed, class, epoch, op index) and the breaker only opens at
// launch boundaries, so outputs, PerfCounters, AND FaultCounters are
// bit-identical to the serial path at any thread count.
TEST(Determinism, FaultedHotspotBitIdenticalAcrossThreadCounts) {
  apps::HotspotParams p;
  p.rows = p.cols = 64;
  p.iterations = 4;
  p.steady_init = false;
  const auto input = make_hotspot_input(p, 7);
  IhwConfig cfg = IhwConfig::all_imprecise();
  cfg.faults = fault::FaultConfig::uniform(1e-3);
  cfg.guard.enabled = true;

  common::GridF ref;
  const auto ref_run = apps::run_guarded_parallel(cfg, 1, [&] {
    ref = apps::run_hotspot<SimFloat>(p, input);
  });
  // The faulted config actually exercises the injector and the guard.
  EXPECT_GT(ref_run.faults.total_injected(), 0u);
  EXPECT_GT(ref_run.faults.total_trips(), 0u);

  for (int threads : {2, 8}) {
    common::GridF out;
    const auto run = apps::run_guarded_parallel(cfg, threads, [&] {
      out = apps::run_hotspot<SimFloat>(p, input);
    });
    EXPECT_TRUE(bit_identical(ref, out)) << "threads=" << threads;
    EXPECT_EQ(ref_run.perf.counts, run.perf.counts) << "threads=" << threads;
    EXPECT_EQ(ref_run.faults.injected, run.faults.injected)
        << "threads=" << threads;
    EXPECT_EQ(ref_run.faults.guard_trips, run.faults.guard_trips);
    EXPECT_EQ(ref_run.faults.degraded_epochs, run.faults.degraded_epochs);
    EXPECT_EQ(ref_run.faults.run_degradations, run.faults.run_degradations);
    EXPECT_EQ(ref_run.faults.retried_epochs, run.faults.retried_epochs);
  }
}

TEST(Determinism, SradBitIdenticalAcrossThreadCounts) {
  apps::SradParams p;
  p.rows = p.cols = 64;
  p.roi_r0 = 2;
  p.roi_c0 = 2;
  p.roi_r1 = 30;
  p.roi_c1 = 30;
  p.iterations = 3;
  const auto input = make_srad_input(p, 11);
  const auto cfg = IhwConfig::all_imprecise();

  common::GridF ref;
  PerfCounters ref_counters = run_with_config_parallel(cfg, 1, [&] {
    ref = apps::run_srad<SimFloat>(p, input.image);
  });

  for (int threads : {2, 8}) {
    common::GridF out;
    PerfCounters c = run_with_config_parallel(cfg, threads, [&] {
      out = apps::run_srad<SimFloat>(p, input.image);
    });
    EXPECT_TRUE(bit_identical(ref, out)) << "threads=" << threads;
    EXPECT_EQ(ref_counters.counts, c.counts) << "threads=" << threads;
  }
}

// The chunked QMC sweep feeds its streaming statistics in sample order, so
// the characterization result cannot depend on the thread count either.
TEST(Determinism, CharacterizationSweepThreadInvariant) {
  ScopedThreads serial(1);
  const auto ref = error::characterize32(error::UnitKind::FpMul, 0, 100000);
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const auto out = error::characterize32(error::UnitKind::FpMul, 0, 100000);
    EXPECT_EQ(ref.stats.samples(), out.stats.samples());
    EXPECT_EQ(ref.stats.errors(), out.stats.errors());
    // Bit-level: the doubles must match exactly, not approximately.
    EXPECT_EQ(ref.stats.mean_rel(), out.stats.mean_rel());
    EXPECT_EQ(ref.stats.max_rel(), out.stats.max_rel());
    EXPECT_EQ(ref.stats.med(), out.stats.med());
    EXPECT_EQ(ref.pmf.error_rate(), out.pmf.error_rate());
    for (int b = ref.pmf.min_bucket(); b <= ref.pmf.max_bucket(); ++b)
      ASSERT_EQ(ref.pmf.probability(b), out.pmf.probability(b)) << "bucket " << b;
  }
}

// Regression: Dim3::count() used to multiply in unsigned and overflow for
// production-scale grids (65536^2 blocks wraps 32 bits to 0).
TEST(Dim3, CountDoesNotOverflowLargeGrids) {
  const Dim3 g(65536, 65536);
  EXPECT_EQ(g.count(), 4294967296ull);
  const Dim3 h(1u << 20, 1u << 12, 4);
  EXPECT_EQ(h.count(), (1ull << 32) * 4);
}

TEST(Runtime, ThreadDefaultsAndScopedOverride) {
  EXPECT_GE(hardware_threads(), 1);
  const int before = default_threads();
  {
    ScopedThreads scoped(3);
    EXPECT_EQ(default_threads(), 3);
    {
      ScopedThreads nested(1);
      EXPECT_EQ(default_threads(), 1);
    }
    EXPECT_EQ(default_threads(), 3);
  }
  EXPECT_EQ(default_threads(), before);
}

}  // namespace
}  // namespace ihw::runtime
