// Tests for IhwConfig factories/description and the FpDispatch routing knob.
#include "ihw/config.h"
#include "ihw/dispatch.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ihw {
namespace {

TEST(IhwConfig, PreciseIsAllOff) {
  const auto c = IhwConfig::precise();
  EXPECT_FALSE(c.any_enabled());
  EXPECT_FALSE(c.mul_imprecise());
  EXPECT_EQ(c.describe(), "precise");
}

TEST(IhwConfig, AllImpreciseEnablesTableOneSet) {
  const auto c = IhwConfig::all_imprecise();
  EXPECT_TRUE(c.add_enabled);
  EXPECT_EQ(c.add_th, kDefaultAddTh);
  EXPECT_EQ(c.mul_mode, MulMode::ImpreciseSimple);
  EXPECT_TRUE(c.rcp_enabled && c.rsqrt_enabled && c.sqrt_enabled);
  EXPECT_TRUE(c.log2_enabled && c.div_enabled && c.fma_enabled);
  EXPECT_TRUE(c.any_enabled());
}

TEST(IhwConfig, RayFactoriesMatchPaperConfigs) {
  const auto a = IhwConfig::ray_conservative();
  EXPECT_TRUE(a.add_enabled && a.rcp_enabled && a.sqrt_enabled);
  EXPECT_FALSE(a.rsqrt_enabled);
  EXPECT_EQ(a.mul_mode, MulMode::Precise);

  const auto b = IhwConfig::ray_with_rsqrt();
  EXPECT_TRUE(b.rsqrt_enabled);

  const auto c = IhwConfig::ray_with_full_path_mul(15);
  EXPECT_EQ(c.mul_mode, MulMode::MitchellFull);
  EXPECT_EQ(c.mul_trunc, 15);
}

TEST(IhwConfig, MulOnlyLeavesEverythingElsePrecise) {
  const auto c = IhwConfig::mul_only(MulMode::MitchellLog, 19);
  EXPECT_EQ(c.mul_mode, MulMode::MitchellLog);
  EXPECT_EQ(c.mul_trunc, 19);
  EXPECT_FALSE(c.add_enabled);
  EXPECT_FALSE(c.rcp_enabled || c.rsqrt_enabled || c.sqrt_enabled ||
               c.log2_enabled || c.div_enabled || c.fma_enabled);
}

TEST(IhwConfig, DescribeNamesEnabledUnits) {
  auto c = IhwConfig::mul_only(MulMode::MitchellFull, 7);
  EXPECT_EQ(c.describe(), "mul(full_path,tr=7)");
  c.rcp_enabled = true;
  EXPECT_NE(c.describe().find("rcp"), std::string::npos);
}

TEST(FpDispatch, PreciseConfigMatchesHostArithmetic) {
  const FpDispatch d{IhwConfig::precise()};
  EXPECT_EQ(d.add(1.5f, 2.25f), 3.75f);
  EXPECT_EQ(d.sub(1.5f, 2.25f), -0.75f);
  EXPECT_EQ(d.mul(1.5f, 2.0f), 3.0f);
  EXPECT_EQ(d.div(3.0f, 2.0f), 1.5f);
  EXPECT_EQ(d.rcp(4.0f), 0.25f);
  EXPECT_EQ(d.sqrt(9.0f), 3.0f);
  EXPECT_EQ(d.rsqrt(4.0f), 0.5f);
  EXPECT_FLOAT_EQ(d.log2(8.0f), 3.0f);
  EXPECT_EQ(d.fma(2.0f, 3.0f, 1.0f), 7.0f);
}

TEST(FpDispatch, RoutesToImpreciseUnits) {
  IhwConfig cfg;
  cfg.add_enabled = true;
  cfg.add_th = 8;
  cfg.mul_mode = MulMode::ImpreciseSimple;
  cfg.rcp_enabled = cfg.sqrt_enabled = cfg.rsqrt_enabled = cfg.log2_enabled =
      cfg.div_enabled = cfg.fma_enabled = true;
  const FpDispatch d{cfg};
  EXPECT_EQ(d.add(1024.0f, 1.0f), ifp_add(1024.0f, 1.0f, 8));
  EXPECT_EQ(d.mul(1.75f, 1.75f), ifp_mul(1.75f, 1.75f));
  EXPECT_EQ(d.rcp(3.0f), ircp(3.0f));
  EXPECT_EQ(d.sqrt(3.0f), isqrt(3.0f));
  EXPECT_EQ(d.rsqrt(3.0f), irsqrt(3.0f));
  EXPECT_EQ(d.log2(3.0f), ilog2(3.0f));
  EXPECT_EQ(d.div(3.0f, 7.0f), ifp_div(3.0f, 7.0f));
  EXPECT_EQ(d.fma(1.5f, 1.5f, 0.5f), ifp_fma(1.5f, 1.5f, 0.5f, 8));
}

TEST(FpDispatch, MulModeSelectsDatapath) {
  IhwConfig cfg;
  cfg.mul_mode = MulMode::MitchellLog;
  cfg.mul_trunc = 5;
  EXPECT_EQ(FpDispatch{cfg}.mul(1.9f, 1.9f),
            acfp_mul(1.9f, 1.9f, AcfpPath::Log, 5));
  cfg.mul_mode = MulMode::MitchellFull;
  EXPECT_EQ(FpDispatch{cfg}.mul(1.9f, 1.9f),
            acfp_mul(1.9f, 1.9f, AcfpPath::Full, 5));
  cfg.mul_mode = MulMode::BitTruncated;
  EXPECT_EQ(FpDispatch{cfg}.mul(1.9f, 1.9f), trunc_mul(1.9f, 1.9f, 5));
}

TEST(FpDispatch, UnfusedFmaUsesConfiguredMulAndAdd) {
  IhwConfig cfg;  // fma disabled, mul imprecise
  cfg.mul_mode = MulMode::ImpreciseSimple;
  const FpDispatch d{cfg};
  EXPECT_EQ(d.fma(1.75f, 1.75f, 1.0f), ifp_mul(1.75f, 1.75f) + 1.0f);
}

TEST(FpDispatch, DoublePrecisionRouting) {
  IhwConfig cfg = IhwConfig::mul_only(MulMode::MitchellFull, 44);
  const FpDispatch d{cfg};
  EXPECT_EQ(d.mul(1.9, 1.7), acfp_mul(1.9, 1.7, AcfpPath::Full, 44));
  EXPECT_EQ(d.add(1.0, 2.0), 3.0);  // adds stay precise
}

TEST(MulMode, ToStringIsStable) {
  EXPECT_EQ(to_string(MulMode::Precise), "precise");
  EXPECT_EQ(to_string(MulMode::ImpreciseSimple), "ifpmul");
  EXPECT_EQ(to_string(MulMode::MitchellLog), "log_path");
  EXPECT_EQ(to_string(MulMode::MitchellFull), "full_path");
  EXPECT_EQ(to_string(MulMode::BitTruncated), "bit_trunc");
}

}  // namespace
}  // namespace ihw
